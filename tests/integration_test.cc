// End-to-end workflow: generate -> persist -> reload -> analyze ->
// pick delta -> join with every algorithm -> persist results -> verify
// round trip. Exercises the same path a downstream user of the library
// (or the rankjoin_cli / make_dataset tools) would take.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "core/similarity_join.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/scale.h"
#include "data/stats.h"
#include "join/estimate.h"
#include "ranking/prefix.h"
#include "ranking/footrule.h"
#include "ranking/reorder.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::PairSet;
using testutil::TestCluster;
using testutil::Truth;

TEST(IntegrationTest, FullWorkflowRoundTrip) {
  const std::string data_path =
      testing::TempDir() + "/rankjoin_integration_data.txt";
  const std::string result_path =
      testing::TempDir() + "/rankjoin_integration_pairs.txt";

  // 1. Generate and scale a workload.
  GeneratorOptions generator;
  generator.k = 10;
  generator.num_rankings = 150;
  generator.domain_size = 500;
  generator.zipf_skew = 1.0;
  generator.near_duplicate_rate = 0.2;
  generator.seed = 4242;
  RankingDataset base = GenerateDataset(generator);
  RankingDataset dataset = ScaleDataset(base, 3, generator.domain_size);
  ASSERT_TRUE(dataset.Validate().ok());

  // 2. Persist and reload.
  ASSERT_TRUE(WriteRankings(data_path, dataset).ok());
  auto loaded = ReadRankings(data_path, dataset.k);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), dataset.size());

  // 3. Analyze and derive the CL-P delta from the measured index.
  DatasetStats stats = ComputeDatasetStats(*loaded);
  EXPECT_EQ(stats.num_rankings, dataset.size());
  EXPECT_GT(stats.zipf_skew, 0.2);
  const double theta = 0.3;
  const int prefix =
      OverlapPrefix(RawThreshold(theta, loaded->k), loaded->k);
  ItemOrder order =
      ItemOrder::FromFrequencies(CountItemFrequencies(loaded->rankings));
  auto ordered = MakeOrderedDataset(loaded->rankings, order);
  const uint64_t delta = SuggestDeltaMeasured(ordered, prefix);
  EXPECT_GE(delta, 1u);

  // 4. Join with every algorithm; all must agree with brute force.
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = Truth(*loaded, theta);
  EXPECT_FALSE(expected.empty());
  std::vector<ResultPair> clp_pairs;
  for (Algorithm algorithm : {Algorithm::kVJ, Algorithm::kVJNL,
                              Algorithm::kCL, Algorithm::kCLP,
                              Algorithm::kVSmart}) {
    SimilarityJoinConfig config;
    config.algorithm = algorithm;
    config.theta = theta;
    config.theta_c = 0.03;
    config.delta = delta;
    auto result = RunSimilarityJoin(&ctx, *loaded, config);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(PairSet(result->pairs), expected) << AlgorithmName(algorithm);
    if (algorithm == Algorithm::kCLP) clp_pairs = result->pairs;
  }

  // 5. Persist results and verify the file contents.
  ASSERT_TRUE(WriteResultPairs(result_path, clp_pairs).ok());
  std::ifstream in(result_path);
  std::set<ResultPair> reread;
  RankingId a = 0;
  RankingId b = 0;
  while (in >> a >> b) reread.insert({a, b});
  EXPECT_EQ(reread, expected);

  std::remove(data_path.c_str());
  std::remove(result_path.c_str());
}

TEST(IntegrationTest, MetricsSurviveAcrossRuns) {
  // One context, several jobs: stage metrics accumulate and the
  // simulated makespan stays monotone in recorded work.
  RankingDataset ds = testutil::SmallSkewedDataset(4343, 150);
  minispark::Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kVJ;
  config.theta = 0.2;
  ASSERT_TRUE(RunSimilarityJoin(&ctx, ds, config).ok());
  const size_t stages_after_one = ctx.metrics().stages().size();
  const double makespan_after_one = ctx.metrics().SimulatedMakespan(8);
  ASSERT_TRUE(RunSimilarityJoin(&ctx, ds, config).ok());
  EXPECT_GT(ctx.metrics().stages().size(), stages_after_one);
  EXPECT_GE(ctx.metrics().SimulatedMakespan(8), makespan_after_one);
  ctx.metrics().Clear();
  EXPECT_TRUE(ctx.metrics().stages().empty());
}

}  // namespace
}  // namespace rankjoin
