// Cross-algorithm edge cases: degenerate datasets, extreme thresholds,
// and tiny k — every configuration must behave, not crash, and agree
// with brute force.

#include <gtest/gtest.h>

#include "core/similarity_join.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::PairSet;
using testutil::TestCluster;
using testutil::Truth;

std::vector<Algorithm> AllDistributed() {
  return {Algorithm::kVJ, Algorithm::kVJNL, Algorithm::kCL,
          Algorithm::kCLP, Algorithm::kVSmart};
}

SimilarityJoinConfig BaseConfig(Algorithm algorithm, double theta) {
  SimilarityJoinConfig config;
  config.algorithm = algorithm;
  config.theta = theta;
  config.theta_c = std::min(0.03, theta);
  config.delta = 16;
  return config;
}

TEST(EdgeCaseTest, EmptyDataset) {
  RankingDataset ds;
  ds.k = 10;
  minispark::Context ctx(TestCluster());
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.3));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(result->pairs.empty());
  }
}

TEST(EdgeCaseTest, SingleRanking) {
  RankingDataset ds;
  ds.k = 5;
  ds.rankings = {Ranking(0, {1, 2, 3, 4, 5})};
  minispark::Context ctx(TestCluster());
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.3));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_TRUE(result->pairs.empty());
  }
}

TEST(EdgeCaseTest, TwoIdenticalRankings) {
  RankingDataset ds;
  ds.k = 5;
  ds.rankings = {Ranking(0, {1, 2, 3, 4, 5}), Ranking(1, {1, 2, 3, 4, 5})};
  minispark::Context ctx(TestCluster());
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.0));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    ASSERT_EQ(result->pairs.size(), 1u) << AlgorithmName(algorithm);
    EXPECT_EQ(result->pairs[0], MakeResultPair(0, 1));
  }
}

TEST(EdgeCaseTest, ThetaZeroOnRandomData) {
  GeneratorOptions generator;
  generator.k = 10;
  generator.num_rankings = 200;
  generator.domain_size = 100;
  generator.exact_duplicate_rate = 0.2;
  generator.seed = 808;
  RankingDataset ds = GenerateDataset(generator);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = Truth(ds, 0.0);
  EXPECT_FALSE(expected.empty());  // exact duplicates planted
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.0));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(PairSet(result->pairs), expected) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, KEqualsOne) {
  // Top-1 "rankings": similarity collapses to equality of the single
  // item (max distance = 2).
  RankingDataset ds;
  ds.k = 1;
  ds.rankings = {Ranking(0, {5}), Ranking(1, {5}), Ranking(2, {9})};
  minispark::Context ctx(TestCluster());
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.4));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(PairSet(result->pairs), Truth(ds, 0.4))
        << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, KEqualsTwo) {
  GeneratorOptions generator;
  generator.k = 2;
  generator.num_rankings = 150;
  generator.domain_size = 12;
  generator.seed = 809;
  RankingDataset ds = GenerateDataset(generator);
  minispark::Context ctx(TestCluster());
  for (double theta : {0.1, 0.5}) {
    std::set<ResultPair> expected = Truth(ds, theta);
    for (Algorithm algorithm : AllDistributed()) {
      auto result =
          RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, theta));
      ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
      EXPECT_EQ(PairSet(result->pairs), expected)
          << AlgorithmName(algorithm) << " theta " << theta;
    }
  }
}

TEST(EdgeCaseTest, HighThresholdNearLimit) {
  // theta = 0.9: prefix is nearly the whole ranking; everything still
  // agrees with brute force. (CL needs theta + 2*theta_c < 1.)
  GeneratorOptions generator;
  generator.k = 10;
  generator.num_rankings = 120;
  generator.domain_size = 60;
  generator.seed = 810;
  RankingDataset ds = GenerateDataset(generator);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = Truth(ds, 0.9);
  for (Algorithm algorithm : AllDistributed()) {
    SimilarityJoinConfig config = BaseConfig(algorithm, 0.9);
    auto result = RunSimilarityJoin(&ctx, ds, config);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(PairSet(result->pairs), expected) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, AllRankingsIdentical) {
  RankingDataset ds;
  ds.k = 4;
  for (RankingId id = 0; id < 30; ++id) {
    ds.rankings.emplace_back(id, std::vector<ItemId>{1, 2, 3, 4});
  }
  minispark::Context ctx(TestCluster());
  const size_t all_pairs = 30 * 29 / 2;
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.1));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(result->pairs.size(), all_pairs) << AlgorithmName(algorithm);
  }
}

TEST(EdgeCaseTest, SparseIdsSupported) {
  // Non-dense ranking ids must work through every pipeline.
  RankingDataset ds;
  ds.k = 3;
  ds.rankings = {Ranking(100, {1, 2, 3}), Ranking(2000, {1, 2, 3}),
                 Ranking(77777, {2, 1, 3})};
  minispark::Context ctx(TestCluster());
  for (Algorithm algorithm : AllDistributed()) {
    auto result = RunSimilarityJoin(&ctx, ds, BaseConfig(algorithm, 0.2));
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(PairSet(result->pairs), Truth(ds, 0.2))
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace rankjoin
