#include "minispark/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "minispark/metrics.h"
#include "minispark/partitioner.h"

namespace rankjoin::minispark {
namespace {

Context::Options SmallCluster() {
  Context::Options options;
  options.num_workers = 4;
  options.default_partitions = 4;
  return options;
}

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(PartitionerTest, Mix64Scatters) {
  // Dense integers must not map to consecutive partitions (identity hash
  // would defeat the skew experiments).
  HashPartitioner p(8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[p.PartitionOf(i)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(PartitionerTest, PairKeysHash) {
  HashPartitioner p(16);
  std::pair<uint32_t, uint32_t> a{1, 2};
  std::pair<uint32_t, uint32_t> b{2, 1};
  // Not a strict requirement, but the mixed hash should distinguish
  // swapped components.
  EXPECT_NE(ShuffleHash(a), ShuffleHash(b));
}

TEST(DatasetTest, ParallelizeSplitsAndCollects) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(10), 3);
  EXPECT_EQ(ds.num_partitions(), 3);
  EXPECT_EQ(ds.Count(), 10u);
  EXPECT_EQ(ds.Collect(), Iota(10));
}

TEST(DatasetTest, ParallelizeUsesContextDefault) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(10));
  EXPECT_EQ(ds.num_partitions(), 4);
}

TEST(DatasetTest, ParallelizeEmpty) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, std::vector<int>{}, 2);
  EXPECT_EQ(ds.Count(), 0u);
  EXPECT_TRUE(ds.Collect().empty());
}

TEST(DatasetTest, MapTransformsEveryElement) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(8), 2);
  auto doubled = ds.Map([](const int& x) { return x * 2; });
  std::vector<int> expect = {0, 2, 4, 6, 8, 10, 12, 14};
  EXPECT_EQ(doubled.Collect(), expect);
}

TEST(DatasetTest, MapChangesType) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(3), 2);
  auto strings =
      ds.Map([](const int& x) { return std::to_string(x); });
  EXPECT_EQ(strings.Collect(), (std::vector<std::string>{"0", "1", "2"}));
}

TEST(DatasetTest, FlatMapExpands) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(3), 2);
  auto repeated = ds.FlatMap([](const int& x) {
    return std::vector<int>(static_cast<size_t>(x), x);
  });
  EXPECT_EQ(repeated.Collect(), (std::vector<int>{1, 2, 2}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(10), 3);
  auto evens = ds.Filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.Collect(), (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(DatasetTest, MapPartitionsSeesWholePartition) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(9), 3);
  auto sums = ds.MapPartitionsWithIndex(
      [](int /*index*/, const std::vector<int>& part) {
        int total = 0;
        for (int x : part) total += x;
        return std::vector<int>{total};
      });
  auto collected = sums.Collect();
  EXPECT_EQ(collected.size(), 3u);
  EXPECT_EQ(std::accumulate(collected.begin(), collected.end(), 0), 36);
}

TEST(DatasetTest, RepartitionPreservesElements) {
  Context ctx(SmallCluster());
  auto ds = Parallelize(&ctx, Iota(10), 2);
  auto re = ds.Repartition(5);
  EXPECT_EQ(re.num_partitions(), 5);
  auto collected = re.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Iota(10));
}

TEST(DatasetTest, MaxPartitionSizeReportsSkew) {
  Context ctx(SmallCluster());
  auto parts = std::make_shared<Dataset<int>::Partitions>(
      Dataset<int>::Partitions{{1, 2, 3, 4}, {5}});
  Dataset<int> ds(&ctx, parts);
  EXPECT_EQ(ds.MaxPartitionSize(), 4u);
}

TEST(KeyValueTest, PartitionByKeyGroupsKeys) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 40; ++i) data.push_back({i % 5, i});
  auto ds = Parallelize(&ctx, data, 4);
  auto shuffled = PartitionByKey(ds, 3);
  EXPECT_EQ(shuffled.num_partitions(), 3);
  EXPECT_EQ(shuffled.Count(), 40u);
  // All records of one key land in the same partition.
  for (int key = 0; key < 5; ++key) {
    int partitions_with_key = 0;
    for (const auto& part : shuffled.partitions()) {
      bool has = false;
      for (const auto& kv : part) has |= kv.first == key;
      partitions_with_key += has;
    }
    EXPECT_EQ(partitions_with_key, 1) << "key " << key;
  }
}

TEST(KeyValueTest, GroupByKeyCollectsAllValues) {
  Context ctx(SmallCluster());
  std::vector<std::pair<std::string, int>> data = {
      {"a", 1}, {"b", 2}, {"a", 3}, {"b", 4}, {"a", 5}};
  auto ds = Parallelize(&ctx, data, 2);
  auto grouped = GroupByKey(ds, 2);
  auto collected = grouped.Collect();
  ASSERT_EQ(collected.size(), 2u);
  for (auto& [key, values] : collected) {
    std::sort(values.begin(), values.end());
    if (key == "a") {
      EXPECT_EQ(values, (std::vector<int>{1, 3, 5}));
    } else {
      EXPECT_EQ(values, (std::vector<int>{2, 4}));
    }
  }
}

TEST(KeyValueTest, ReduceByKeySums) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, int>> data;
  for (int i = 1; i <= 100; ++i) data.push_back({i % 3, i});
  auto ds = Parallelize(&ctx, data, 4);
  auto reduced =
      ReduceByKey(ds, [](int a, int b) { return a + b; }, 2);
  auto collected = reduced.Collect();
  ASSERT_EQ(collected.size(), 3u);
  int total = 0;
  for (const auto& [k, v] : collected) total += v;
  EXPECT_EQ(total, 5050);
}

TEST(KeyValueTest, JoinMatchesKeys) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, std::string>> left = {
      {1, "a"}, {2, "b"}, {3, "c"}};
  std::vector<std::pair<int, double>> right = {
      {2, 2.0}, {3, 3.0}, {3, 3.5}, {4, 4.0}};
  auto l = Parallelize(&ctx, left, 2);
  auto r = Parallelize(&ctx, right, 3);
  auto joined = Join(l, r, 2);
  auto collected = joined.Collect();
  ASSERT_EQ(collected.size(), 3u);  // (2,b,2.0), (3,c,3.0), (3,c,3.5)
  int key2 = 0;
  int key3 = 0;
  for (const auto& [k, vw] : collected) {
    if (k == 2) {
      ++key2;
      EXPECT_EQ(vw.first, "b");
    }
    if (k == 3) {
      ++key3;
      EXPECT_EQ(vw.first, "c");
    }
  }
  EXPECT_EQ(key2, 1);
  EXPECT_EQ(key3, 2);
}

TEST(KeyValueTest, CoGroupIncludesUnmatchedKeys) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, int>> left = {{1, 10}, {2, 20}};
  std::vector<std::pair<int, int>> right = {{2, 200}, {3, 300}};
  auto l = Parallelize(&ctx, left, 2);
  auto r = Parallelize(&ctx, right, 2);
  auto cg = CoGroup(l, r, 2);
  auto collected = cg.Collect();
  ASSERT_EQ(collected.size(), 3u);
  for (const auto& [k, lists] : collected) {
    if (k == 1) {
      EXPECT_EQ(lists.first.size(), 1u);
      EXPECT_TRUE(lists.second.empty());
    } else if (k == 2) {
      EXPECT_EQ(lists.first.size(), 1u);
      EXPECT_EQ(lists.second.size(), 1u);
    } else {
      EXPECT_TRUE(lists.first.empty());
      EXPECT_EQ(lists.second.size(), 1u);
    }
  }
}

TEST(KeyValueTest, DistinctRemovesDuplicates) {
  Context ctx(SmallCluster());
  std::vector<int> data = {1, 2, 2, 3, 3, 3, 4};
  auto ds = Parallelize(&ctx, data, 3);
  auto collected = Distinct(ds, 2).Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, (std::vector<int>{1, 2, 3, 4}));
}

TEST(KeyValueTest, DistinctOnPairs) {
  Context ctx(SmallCluster());
  using P = std::pair<uint32_t, uint32_t>;
  std::vector<P> data = {{1, 2}, {1, 2}, {2, 1}, {3, 4}};
  auto ds = Parallelize(&ctx, data, 2);
  auto collected = Distinct(ds, 2).Collect();
  EXPECT_EQ(collected.size(), 3u);
}

TEST(KeyValueTest, UnionConcatenates) {
  Context ctx(SmallCluster());
  auto a = Parallelize(&ctx, std::vector<int>{1, 2}, 1);
  auto b = Parallelize(&ctx, std::vector<int>{3}, 1);
  auto u = Union(a, b);
  EXPECT_EQ(u.num_partitions(), 2);
  EXPECT_EQ(u.Collect(), (std::vector<int>{1, 2, 3}));
}

TEST(BroadcastTest, SharesValue) {
  Context ctx(SmallCluster());
  Broadcast<std::vector<int>> bc = ctx.MakeBroadcast(Iota(5));
  Broadcast<std::vector<int>> copy = bc;
  EXPECT_EQ(&*bc, &*copy);
  EXPECT_EQ(copy->size(), 5u);
}

TEST(MetricsTest, ShuffleRecordsCounted) {
  Context ctx(SmallCluster());
  ctx.metrics().Clear();
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 30; ++i) data.push_back({i, i});
  auto ds = Parallelize(&ctx, data, 3);
  PartitionByKey(ds, 2, "testShuffle");
  uint64_t shuffled = 0;
  for (const auto& stage : ctx.metrics().stages()) {
    if (stage.name.rfind("testShuffle", 0) == 0) {
      shuffled += stage.shuffle_records;
    }
  }
  EXPECT_EQ(shuffled, 30u);
}

TEST(MetricsTest, SimulatedMakespanLpt) {
  StageMetrics stage;
  stage.task_seconds = {4.0, 3.0, 2.0, 1.0};
  // 1 worker: sum = 10. 2 workers LPT: {4,1} vs {3,2} -> 5.
  EXPECT_DOUBLE_EQ(stage.SimulatedMakespan(1), 10.0);
  EXPECT_DOUBLE_EQ(stage.SimulatedMakespan(2), 5.0);
  // More workers than tasks: longest task dominates.
  EXPECT_DOUBLE_EQ(stage.SimulatedMakespan(8), 4.0);
}

TEST(MetricsTest, JobMakespanAddsStages) {
  JobMetrics job;
  StageMetrics s1;
  s1.task_seconds = {2.0, 2.0};
  StageMetrics s2;
  s2.task_seconds = {1.0};
  job.AddStage(s1);
  job.AddStage(s2);
  EXPECT_DOUBLE_EQ(job.SimulatedMakespan(2), 3.0);
  EXPECT_DOUBLE_EQ(job.TotalTaskSeconds(), 5.0);
}

TEST(MetricsTest, ToStringMentionsStageNames) {
  Context ctx(SmallCluster());
  ctx.metrics().Clear();
  // Transformations are lazy — the stage exists only once it is forced.
  Parallelize(&ctx, Iota(4), 2)
      .Map([](const int& x) { return x; }, "namedStage")
      .Collect();
  EXPECT_NE(ctx.metrics().ToString().find("namedStage"), std::string::npos);
}

TEST(LazyTest, TransformationsDeferUntilForced) {
  Context ctx(SmallCluster());
  std::atomic<int> calls{0};
  auto ds = Parallelize(&ctx, Iota(8), 2).Map([&calls](const int& x) {
    ++calls;
    return x + 1;
  });
  EXPECT_FALSE(ds.materialized());
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(ds.Collect().size(), 8u);
  EXPECT_TRUE(ds.materialized());
  EXPECT_EQ(calls.load(), 8);
}

TEST(LazyTest, NarrowChainFusesIntoOneStage) {
  Context ctx(SmallCluster());
  ctx.metrics().Clear();
  auto out =
      Parallelize(&ctx, Iota(100), 4)
          .Map([](const int& x) { return x * 2; }, "double")
          .Filter([](const int& x) { return x % 4 == 0; }, "mult4")
          .FlatMap([](const int& x) { return std::vector<int>{x, x}; },
                   "dup");
  EXPECT_EQ(out.pending_ops(), "map+filter+flatMap");
  EXPECT_EQ(out.Collect().size(), 100u);
  // One stage for the source, ONE for the whole fused chain.
  EXPECT_EQ(ctx.metrics().NumStages(), 2u);
  bool found = false;
  for (const auto& stage : ctx.metrics().stages()) {
    found |= stage.fused_ops == "map+filter+flatMap";
  }
  EXPECT_TRUE(found);
}

TEST(LazyTest, CacheMaterializesExactlyOnce) {
  Context ctx(SmallCluster());
  std::atomic<int> calls{0};
  auto ds = Parallelize(&ctx, Iota(10), 2).Map([&calls](const int& x) {
    ++calls;
    return x;
  });
  ds.Cache();
  EXPECT_TRUE(ds.materialized());
  EXPECT_EQ(calls.load(), 10);
  // Further actions reuse the materialized partitions.
  ds.Collect();
  ds.Count();
  ds.Cache();
  EXPECT_EQ(calls.load(), 10);
}

TEST(LazyTest, CopiedHandlesShareMaterialization) {
  Context ctx(SmallCluster());
  std::atomic<int> calls{0};
  auto ds = Parallelize(&ctx, Iota(6), 2).Map([&calls](const int& x) {
    ++calls;
    return x;
  });
  auto copy = ds;  // handles share the plan state
  copy.Collect();
  ds.Collect();
  EXPECT_EQ(calls.load(), 6);
}

TEST(LazyTest, FusionDisabledRunsEagerly) {
  Context::Options options = SmallCluster();
  options.fuse_narrow_ops = false;
  Context ctx(options);
  std::atomic<int> calls{0};
  auto ds = Parallelize(&ctx, Iota(5), 2).Map([&calls](const int& x) {
    ++calls;
    return x;
  });
  // Eager mode materializes every operator immediately.
  EXPECT_TRUE(ds.materialized());
  EXPECT_EQ(calls.load(), 5);
}

TEST(LazyTest, NarrowChainFusesIntoShuffleWrite) {
  Context ctx(SmallCluster());
  ctx.metrics().Clear();
  auto keyed = Parallelize(&ctx, Iota(20), 2).Map(
      [](const int& x) {
        return std::pair<int, int>(x % 3, x);
      },
      "key");
  EXPECT_EQ(GroupByKey(keyed, 2, "g").Collect().size(), 3u);
  // The pending map runs inside the shuffle-write tasks instead of
  // materializing an intermediate dataset.
  bool fused_into_write = false;
  for (const auto& stage : ctx.metrics().stages()) {
    fused_into_write |= stage.fused_ops == "map+shuffleWrite";
  }
  EXPECT_TRUE(fused_into_write);
}

TEST(LazyTest, MaterializedElementsCounted) {
  Context ctx(SmallCluster());
  ctx.metrics().Clear();
  Parallelize(&ctx, Iota(50), 4)
      .Filter([](const int& x) { return x < 10; }, "small")
      .Collect();
  uint64_t filter_stage_elements = 0;
  for (const auto& stage : ctx.metrics().stages()) {
    if (stage.fused_ops == "filter") {
      filter_stage_elements = stage.materialized_elements;
    }
  }
  EXPECT_EQ(filter_stage_elements, 10u);
  // 50 from parallelize + 10 from the filter output.
  EXPECT_EQ(ctx.metrics().TotalMaterializedElements(), 60u);
}

TEST(ExplainTest, PendingChainRendersWithoutForcing) {
  Context ctx(SmallCluster());
  auto chained = Parallelize(&ctx, Iota(10), 2)
                     .Map([](const int& x) { return x * 2; }, "double")
                     .Filter([](const int& x) { return x > 5; }, "big");
  const std::string dot = chained.ExplainDot();
  // Rendering is driver-side only: the chain must still be pending.
  EXPECT_FALSE(chained.materialized());
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("parallelize"), std::string::npos);
  EXPECT_NE(dot.find("map"), std::string::npos);
  EXPECT_NE(dot.find("double"), std::string::npos);
  EXPECT_NE(dot.find("filter"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(ExplainTest, WideOpsAndCacheAppearInPlan) {
  Context ctx(SmallCluster());
  auto keyed = Parallelize(&ctx, Iota(30), 3).Map(
      [](const int& x) { return std::pair<int, int>(x % 5, x); }, "key");
  auto grouped = GroupByKey(keyed, 3, "byMod");
  grouped.Cache();
  const std::string dot = grouped.ExplainDot();
  // Shuffle boundary (doubled box), its user name, the group-side narrow
  // step, and the Cache() pin all show up; the root is materialized.
  EXPECT_NE(dot.find("partitionBy"), std::string::npos);
  EXPECT_NE(dot.find("byMod"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("cache"), std::string::npos);
  EXPECT_NE(dot.find("[materialized]"), std::string::npos);
}

TEST(ExplainTest, JoinPlanHasBothParents) {
  Context ctx(SmallCluster());
  auto left = Parallelize(&ctx, Iota(10), 2).Map(
      [](const int& x) { return std::pair<int, int>(x, x); }, "leftKey");
  auto right = Parallelize(&ctx, Iota(10), 2).Map(
      [](const int& x) { return std::pair<int, int>(x, -x); }, "rightKey");
  const std::string dot = Join(left, right, 2, "testJoin").ExplainDot();
  EXPECT_NE(dot.find("join"), std::string::npos);
  EXPECT_NE(dot.find("leftKey"), std::string::npos);
  EXPECT_NE(dot.find("rightKey"), std::string::npos);
  // Two distinct parallelize sources feed the DAG.
  size_t sources = 0;
  for (size_t pos = dot.find("parallelize"); pos != std::string::npos;
       pos = dot.find("parallelize", pos + 1)) {
    ++sources;
  }
  EXPECT_EQ(sources, 2u);
}

}  // namespace
}  // namespace rankjoin::minispark
