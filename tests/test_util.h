#ifndef RANKJOIN_TESTS_TEST_UTIL_H_
#define RANKJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <vector>

#include "data/generator.h"
#include "join/brute_force.h"
#include "join/stats.h"
#include "minispark/context.h"

namespace rankjoin::testutil {

/// A small skewed dataset with planted near-duplicates — large enough to
/// exercise multi-partition paths, small enough for brute force.
inline RankingDataset SmallSkewedDataset(uint64_t seed = 1,
                                         size_t n = 400,
                                         int k = 10) {
  GeneratorOptions options;
  options.k = k;
  options.num_rankings = n;
  options.domain_size = 300;
  options.zipf_skew = 0.9;
  options.near_duplicate_rate = 0.2;
  options.max_perturbations = 2;
  options.seed = seed;
  return GenerateDataset(options);
}

inline std::set<ResultPair> PairSet(const std::vector<ResultPair>& pairs) {
  return std::set<ResultPair>(pairs.begin(), pairs.end());
}

/// Ground truth via brute force.
inline std::set<ResultPair> Truth(const RankingDataset& ds, double theta) {
  return PairSet(BruteForceJoin(ds, theta).pairs);
}

inline minispark::Context::Options TestCluster(int workers = 4,
                                               int partitions = 8) {
  minispark::Context::Options options;
  options.num_workers = workers;
  options.default_partitions = partitions;
  return options;
}

}  // namespace rankjoin::testutil

#endif  // RANKJOIN_TESTS_TEST_UTIL_H_
