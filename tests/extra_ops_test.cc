#include "minispark/extra_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

namespace rankjoin::minispark {
namespace {

Context::Options SmallCluster() {
  Context::Options options;
  options.num_workers = 4;
  options.default_partitions = 4;
  return options;
}

TEST(MapValuesTest, TransformsOnlyValues) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, int>> data = {{1, 10}, {2, 20}};
  auto ds = Parallelize(&ctx, data, 2);
  auto mapped = MapValues(ds, [](const int& v) { return v / 10; });
  auto collected = mapped.Collect();
  ASSERT_EQ(collected.size(), 2u);
  for (const auto& [k, v] : collected) EXPECT_EQ(k, v);
}

TEST(KeysValuesTest, Project) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, std::string>> data = {{1, "a"}, {2, "b"}};
  auto ds = Parallelize(&ctx, data, 2);
  EXPECT_EQ(Keys(ds).Collect(), (std::vector<int>{1, 2}));
  EXPECT_EQ(Values(ds).Collect(), (std::vector<std::string>{"a", "b"}));
}

TEST(AggregateByKeyTest, DistinctAccumulatorType) {
  Context ctx(SmallCluster());
  // Average per key: accumulator = (sum, count).
  std::vector<std::pair<int, double>> data;
  for (int i = 0; i < 60; ++i) {
    data.push_back({i % 3, static_cast<double>(i)});
  }
  auto ds = Parallelize(&ctx, data, 4);
  using Acc = std::pair<double, int>;
  auto agg = AggregateByKey(
      ds, Acc{0.0, 0},
      [](Acc acc, double v) {
        acc.first += v;
        acc.second += 1;
        return acc;
      },
      [](Acc a, const Acc& b) {
        a.first += b.first;
        a.second += b.second;
        return a;
      },
      2);
  auto collected = agg.Collect();
  ASSERT_EQ(collected.size(), 3u);
  for (const auto& [key, acc] : collected) {
    EXPECT_EQ(acc.second, 20);
    // Keys 0,1,2: arithmetic series sums.
    double expected = 0;
    for (int i = key; i < 60; i += 3) expected += i;
    EXPECT_DOUBLE_EQ(acc.first, expected);
  }
}

TEST(CountByKeyTest, Counts) {
  Context ctx(SmallCluster());
  std::vector<std::pair<std::string, int>> data;
  for (int i = 0; i < 10; ++i) data.push_back({"a", i});
  for (int i = 0; i < 5; ++i) data.push_back({"b", i});
  auto ds = Parallelize(&ctx, data, 3);
  auto counts = CountByKey(ds, 2).Collect();
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [key, count] : counts) {
    EXPECT_EQ(count, key == "a" ? 10u : 5u);
  }
}

TEST(SampleTest, FractionRoughlyRespected) {
  Context ctx(SmallCluster());
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(&ctx, data, 8);
  const size_t sampled = Sample(ds, 0.3).Count();
  EXPECT_GT(sampled, 2500u);
  EXPECT_LT(sampled, 3500u);
  // Edge fractions.
  EXPECT_EQ(Sample(ds, 0.0).Count(), 0u);
  EXPECT_EQ(Sample(ds, 1.0).Count(), 10000u);
}

TEST(SampleTest, DeterministicForSeed) {
  Context ctx(SmallCluster());
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(&ctx, data, 4);
  EXPECT_EQ(Sample(ds, 0.5, 7).Collect(), Sample(ds, 0.5, 7).Collect());
}

TEST(SortByKeyTest, GloballySorted) {
  Context ctx(SmallCluster());
  Rng rng(3);
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back({static_cast<int>(rng.Uniform(100000)), i});
  }
  auto ds = Parallelize(&ctx, data, 8);
  auto sorted = SortByKey(ds, 6);
  EXPECT_EQ(sorted.num_partitions(), 6);
  auto collected = sorted.Collect();
  ASSERT_EQ(collected.size(), data.size());
  EXPECT_TRUE(std::is_sorted(
      collected.begin(), collected.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(SortByKeyTest, RangePartitionsAreBalancedOnUniformKeys) {
  Context ctx(SmallCluster());
  Rng rng(5);
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back({static_cast<int>(rng.Uniform(1 << 20)), i});
  }
  auto ds = Parallelize(&ctx, data, 8);
  auto sorted = SortByKey(ds, 5);
  // Sampled boundaries should keep the largest partition within ~3x of
  // the ideal share.
  EXPECT_LT(sorted.MaxPartitionSize(), 3u * 20000u / 5u);
}

TEST(SortByKeyTest, HandlesEmptyAndTiny) {
  Context ctx(SmallCluster());
  auto empty = Parallelize(&ctx, std::vector<std::pair<int, int>>{}, 2);
  EXPECT_EQ(SortByKey(empty, 3).Count(), 0u);

  auto single =
      Parallelize(&ctx, std::vector<std::pair<int, int>>{{5, 1}}, 2);
  auto collected = SortByKey(single, 3).Collect();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].first, 5);
}

TEST(SortByKeyTest, DuplicateKeysPreserved) {
  Context ctx(SmallCluster());
  std::vector<std::pair<int, int>> data = {{1, 1}, {1, 2}, {1, 3}, {0, 4}};
  auto ds = Parallelize(&ctx, data, 2);
  auto collected = SortByKey(ds, 2).Collect();
  ASSERT_EQ(collected.size(), 4u);
  EXPECT_EQ(collected[0].first, 0);
  int ones = 0;
  for (const auto& [k, v] : collected) ones += k == 1;
  EXPECT_EQ(ones, 3);
}

}  // namespace
}  // namespace rankjoin::minispark
