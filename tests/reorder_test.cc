#include "ranking/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rankjoin {
namespace {

TEST(CountItemFrequenciesTest, CountsAcrossRankings) {
  std::vector<Ranking> rankings = {
      Ranking(0, {1, 2, 3}),
      Ranking(1, {2, 3, 4}),
      Ranking(2, {3, 4, 5}),
  };
  auto freq = CountItemFrequencies(rankings);
  EXPECT_EQ(freq[1], 1u);
  EXPECT_EQ(freq[2], 2u);
  EXPECT_EQ(freq[3], 3u);
  EXPECT_EQ(freq[5], 1u);
}

TEST(ItemOrderTest, RarerItemsSortFirst) {
  std::unordered_map<ItemId, uint32_t> freq = {{10, 5}, {20, 1}, {30, 3}};
  ItemOrder order = ItemOrder::FromFrequencies(freq);
  EXPECT_LT(order.PositionOf(20), order.PositionOf(30));
  EXPECT_LT(order.PositionOf(30), order.PositionOf(10));
}

TEST(ItemOrderTest, TiesBrokenByItemId) {
  std::unordered_map<ItemId, uint32_t> freq = {{7, 2}, {3, 2}};
  ItemOrder order = ItemOrder::FromFrequencies(freq);
  EXPECT_LT(order.PositionOf(3), order.PositionOf(7));
}

TEST(ItemOrderTest, UnknownItemsSortBeforeKnown) {
  std::unordered_map<ItemId, uint32_t> freq = {{0, 1}};
  ItemOrder order = ItemOrder::FromFrequencies(freq);
  // Item 999 was never counted: frequency 0, rarer than everything.
  EXPECT_LT(order.PositionOf(999), order.PositionOf(0));
}

TEST(MakeOrderedTest, CanonicalSortedByFrequency) {
  // Frequencies: item 5 -> 3, item 7 -> 2, item 1 -> 1. Canonical order
  // of ranking 0 is therefore [1, 7, 5] (ascending frequency).
  std::vector<Ranking> rankings = {
      Ranking(0, {5, 1, 7}),
      Ranking(1, {5, 7, 2}),
      Ranking(2, {5, 3, 4}),
  };
  ItemOrder order = ItemOrder::FromFrequencies(CountItemFrequencies(rankings));
  OrderedRanking o = MakeOrdered(rankings[0], order);
  EXPECT_EQ(o.id, 0u);
  EXPECT_EQ(o.k, 3);
  EXPECT_EQ(o.canonical.front().item, 1u);  // unique item first
  EXPECT_EQ(o.canonical.back().item, 5u);   // most frequent last
}

TEST(MakeOrderedTest, OriginalRanksPreserved) {
  std::vector<Ranking> rankings = {Ranking(0, {5, 1, 7})};
  ItemOrder order = ItemOrder::FromFrequencies(CountItemFrequencies(rankings));
  OrderedRanking o = MakeOrdered(rankings[0], order);
  for (const ItemEntry& e : o.canonical) {
    EXPECT_EQ(rankings[0].ItemAt(e.rank), e.item);
  }
}

TEST(MakeOrderedTest, ByItemSortedByItemId) {
  std::vector<Ranking> rankings = {Ranking(0, {9, 4, 6, 1})};
  OrderedRanking o = MakeOrdered(rankings[0], ItemOrder());
  ASSERT_EQ(o.by_item.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      o.by_item.begin(), o.by_item.end(),
      [](const ItemEntry& a, const ItemEntry& b) { return a.item < b.item; }));
}

TEST(MakeOrderedDatasetTest, PreservesOrderAndSize) {
  std::vector<Ranking> rankings = {Ranking(3, {1, 2}), Ranking(9, {2, 3})};
  auto ordered = MakeOrderedDataset(rankings, ItemOrder());
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0].id, 3u);
  EXPECT_EQ(ordered[1].id, 9u);
}

}  // namespace
}  // namespace rankjoin
