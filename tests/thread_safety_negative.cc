// Compile-time negative test for the thread-safety analysis wired up in
// common/sync.h. This TU is compiled twice by tests/CMakeLists.txt
// under Clang (never linked into anything):
//
//   1. without RANKJOIN_EXPECT_THREAD_SAFETY_ERROR — must COMPILE,
//      proving the file is otherwise valid C++ (so a failure in pass 2
//      can only come from the analysis, not a stray syntax error);
//   2. with the macro — must FAIL under -Werror=thread-safety, proving
//      the analysis actually fires on a guarded-member access without
//      the lock. If a toolchain change ever silently disabled the
//      analysis, pass 2 would start succeeding and configure would
//      abort.
//
// Under GCC the attributes are no-ops and the check is skipped (the
// gated code would compile fine), so CMake only wires this for Clang.

#include "src/common/sync.h"

namespace {

class Guarded {
 public:
  void Increment() {
    rankjoin::MutexLock lock(mu_);
    ++value_;
  }

#ifdef RANKJOIN_EXPECT_THREAD_SAFETY_ERROR
  // Violation: reads a GUARDED_BY member with no lock held. This is
  // exactly the class of bug the analysis exists to reject.
  int UnlockedRead() { return value_; }
#endif

 private:
  rankjoin::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Increment();
  return 0;
}
