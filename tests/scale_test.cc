#include "data/scale.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/generator.h"
#include "join/brute_force.h"

namespace rankjoin {
namespace {

RankingDataset SmallDataset() {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 150;
  options.domain_size = 200;
  options.seed = 31;
  return GenerateDataset(options);
}

TEST(ScaleTest, FactorOneIsIdentity) {
  RankingDataset ds = SmallDataset();
  RankingDataset scaled = ScaleDataset(ds, 1, 200);
  EXPECT_EQ(scaled.size(), ds.size());
}

TEST(ScaleTest, SizeGrowsByFactor) {
  RankingDataset ds = SmallDataset();
  RankingDataset scaled = ScaleDataset(ds, 5, 200);
  EXPECT_EQ(scaled.size(), 5 * ds.size());
  EXPECT_EQ(scaled.k, ds.k);
  EXPECT_TRUE(scaled.Validate().ok());
}

TEST(ScaleTest, OriginalsPreserved) {
  RankingDataset ds = SmallDataset();
  RankingDataset scaled = ScaleDataset(ds, 3, 200);
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(scaled.rankings[i], ds.rankings[i]);
  }
}

TEST(ScaleTest, IdsRemainUnique) {
  RankingDataset ds = SmallDataset();
  RankingDataset scaled = ScaleDataset(ds, 4, 200);
  std::unordered_set<RankingId> ids;
  for (const Ranking& r : scaled.rankings) {
    EXPECT_TRUE(ids.insert(r.id()).second) << "duplicate id " << r.id();
  }
}

TEST(ScaleTest, DomainUnchanged) {
  // The scaling method of [10, 24]: new records draw from the same item
  // universe.
  RankingDataset ds = SmallDataset();
  RankingDataset scaled = ScaleDataset(ds, 3, 200);
  for (const Ranking& r : scaled.rankings) {
    for (ItemId item : r.items()) EXPECT_LT(item, 200u);
  }
}

TEST(ScaleTest, ResultGrowsRoughlyLinearly) {
  // Join result should grow approximately linearly with the factor
  // (paper Section 7) — allow generous slack, but rule out quadratic
  // blow-up and rule in actual growth.
  RankingDataset ds = SmallDataset();
  const double theta = 0.2;
  const size_t r1 = BruteForceJoin(ds, theta).pairs.size();
  const size_t r3 =
      BruteForceJoin(ScaleDataset(ds, 3, 200), theta).pairs.size();
  EXPECT_GE(r3, 2 * std::max<size_t>(r1, 1));
  EXPECT_LE(r3, 40 * std::max<size_t>(r1, 1) + 400);
}

TEST(ScaleTest, DeterministicForSeed) {
  RankingDataset ds = SmallDataset();
  RankingDataset a = ScaleDataset(ds, 2, 200, 3, 99);
  RankingDataset b = ScaleDataset(ds, 2, 200, 3, 99);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rankings[i], b.rankings[i]);
  }
}

}  // namespace
}  // namespace rankjoin
