// Cost-based planner tests (plan/): sample-size math, deterministic
// profiling, golden strategy decisions on seeded generator datasets
// (skewed -> CL-P, uniform-small -> VJ, duplicate-heavy -> CL),
// auto == explicit result identity, plan JSON surfacing, the
// ParseAlgorithm/AlgorithmName round trip for every enum value, the
// FlatRankings span overloads of the estimate helpers, and the runtime
// skew-splitting equivalence (split == unsplit byte-identical pairs,
// with and without chaos injection).

#include "plan/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/similarity_join.h"
#include "join/estimate.h"
#include "plan/cost_model.h"
#include "ranking/reorder.h"
#include "test_util.h"

namespace rankjoin {
namespace {

using minispark::Context;
using plan::DatasetProfile;
using plan::ErrorBoundedSampleSize;
using plan::JoinPlan;
using plan::PlannerOptions;
using plan::ProfileDataset;
using testutil::PairSet;
using testutil::SmallSkewedDataset;
using testutil::TestCluster;
using testutil::Truth;

/// Pins an environment variable for one test's scope, restoring the
/// prior state on destruction (same rationale as in fault_test.cc: CI
/// runs the suite under several env overrides).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// Pins the env knobs that change engine behavior mid-suite.
struct PinnedEnv {
  ScopedEnv split{"RANKJOIN_SPLIT_PARTITION_BYTES", nullptr};
  ScopedEnv fault{"RANKJOIN_FAULT_SPEC", nullptr};
  ScopedEnv budget{"RANKJOIN_SHUFFLE_BUDGET_BYTES", nullptr};
  ScopedEnv trace{"RANKJOIN_TRACE_LEVEL", nullptr};
  ScopedEnv lint{"RANKJOIN_LINT_LEVEL", nullptr};
  ScopedEnv pipelined{"RANKJOIN_PIPELINED_STAGES", nullptr};
};

// ---------------------------------------------------------------------
// Satellite: ParseAlgorithm / AlgorithmName round trip, every value.

TEST(AlgorithmTest, NameParseRoundTripCoversEveryValue) {
  const Algorithm all[] = {Algorithm::kBruteForce, Algorithm::kVJ,
                           Algorithm::kVJNL,       Algorithm::kCL,
                           Algorithm::kCLP,        Algorithm::kVSmart,
                           Algorithm::kAuto};
  for (Algorithm a : all) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok()) << AlgorithmName(a);
    EXPECT_EQ(*parsed, a) << AlgorithmName(a);
  }
  EXPECT_STREQ(AlgorithmName(Algorithm::kAuto), "auto");
  EXPECT_FALSE(ParseAlgorithm("automatic").ok());
}

TEST(AlgorithmTest, AutoConfigValidates) {
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.2;
  EXPECT_TRUE(config.Validate(10).ok());
  config.theta_c = -0.5;
  EXPECT_FALSE(config.Validate(10).ok());
}

// ---------------------------------------------------------------------
// Cost model: sample size and profiling.

TEST(CostModelTest, ErrorBoundedSampleSizeClampsAndScales) {
  PlannerOptions options;
  // Small datasets are sampled whole.
  EXPECT_EQ(ErrorBoundedSampleSize(0, options), 0u);
  EXPECT_EQ(ErrorBoundedSampleSize(150, options), 150u);
  // Hoeffding at the defaults: ln(2/0.05) / (2 * 0.05^2) ~ 738, above
  // the min clamp and below the max.
  const size_t m = ErrorBoundedSampleSize(1'000'000, options);
  EXPECT_GE(m, 700u);
  EXPECT_LE(m, 800u);
  // Tighter epsilon needs more samples, capped at max_sample.
  options.epsilon = 0.01;
  EXPECT_EQ(ErrorBoundedSampleSize(1'000'000, options),
            options.max_sample);
  // Looser epsilon floors at min_sample.
  options.epsilon = 0.5;
  EXPECT_EQ(ErrorBoundedSampleSize(1'000'000, options),
            options.min_sample);
}

TEST(CostModelTest, ProfileIsDeterministicAndSane) {
  const RankingDataset data = SmallSkewedDataset(7, 600);
  PlannerOptions options;
  const DatasetProfile a = ProfileDataset(data.store(), 0.2, 0.05, options);
  const DatasetProfile b = ProfileDataset(data.store(), 0.2, 0.05, options);
  EXPECT_EQ(a.sample_size, b.sample_size);
  EXPECT_EQ(a.sum_sq_theta, b.sum_sq_theta);
  EXPECT_EQ(a.suggested_delta, b.suggested_delta);
  EXPECT_DOUBLE_EQ(a.pair_density_theta, b.pair_density_theta);

  EXPECT_EQ(a.n, data.size());
  EXPECT_GT(a.sample_size, 0u);
  EXPECT_GE(a.scale, 1.0);
  EXPECT_GE(a.pair_density_theta, a.pair_density_theta_c);
  EXPECT_GT(a.centroid_fraction, 0.0);
  EXPECT_LE(a.centroid_fraction, 1.0);
  EXPECT_GE(a.avg_cluster_size, 1.0);
  EXPECT_GE(a.suggested_delta, 1u);
  EXPECT_GE(a.max_list_theta, 1u);
  // The near-duplicate population must show up as compression.
  EXPECT_LT(a.centroid_fraction, 1.0);
}

// ---------------------------------------------------------------------
// Satellite: FlatRankings span overloads of the estimate helpers agree
// with the legacy OrderedRanking overloads.

TEST(EstimateSpanOverloadTest, MatchesLegacyMeasurement) {
  const RankingDataset data = SmallSkewedDataset(3, 300);
  const ItemOrder order =
      ItemOrder::FromFrequencies(CountItemFrequencies(data.store()));
  const auto ordered = MakeOrderedDataset(data.store(), order);
  for (int prefix : {1, 3, 5}) {
    std::vector<size_t> legacy = MeasurePostingListLengths(ordered, prefix);
    std::vector<size_t> flat =
        MeasurePostingListLengths(data.store().Views(), prefix, &order);
    std::sort(legacy.begin(), legacy.end());
    std::sort(flat.begin(), flat.end());
    EXPECT_EQ(legacy, flat) << "prefix " << prefix;
    EXPECT_EQ(SuggestDeltaMeasured(ordered, prefix),
              SuggestDeltaMeasured(data.store().Views(), prefix, 4.0,
                                   &order));
  }
}

// ---------------------------------------------------------------------
// Golden planner decisions on seeded generator datasets.

RankingDataset UniformSmallDataset() {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 250;
  options.domain_size = 5000;
  options.zipf_skew = 0.0;
  options.near_duplicate_rate = 0.0;
  options.seed = 11;
  return GenerateDataset(options);
}

/// The truncation-artifact regime the paper observes on DBLP/ORKU: half
/// the records are exact copies, so theta_c-clustering collapses the
/// dataset (centroid fraction ~ 0.1) while VJ pays full quadratic price
/// at a large-theta prefix.
RankingDataset DuplicateHeavyDataset() {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 4000;
  options.domain_size = 2500;
  options.zipf_skew = 0.3;
  options.near_duplicate_rate = 0.15;
  options.exact_duplicate_rate = 0.5;
  options.max_perturbations = 1;
  options.seed = 12;
  return GenerateDataset(options);
}

/// Straggler-bound regime: a large theta saturates the prefixes, so the
/// Zipf head items survive frequency reordering into the inverted index
/// and one posting list holds a big share of the quadratic work. Only
/// CL-P can cap that list (Algorithm 3).
RankingDataset HighSkewDataset() {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 4000;
  options.domain_size = 500;
  options.zipf_skew = 1.1;
  options.near_duplicate_rate = 0.1;
  options.seed = 13;
  return GenerateDataset(options);
}

JoinPlan MustPlan(Context* ctx, const RankingDataset& data,
                  const SimilarityJoinConfig& config) {
  auto plan = plan::PlanJoin(ctx, data, config);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(PlannerGoldenTest, UniformSmallPicksVj) {
  Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.2;
  const JoinPlan plan = MustPlan(&ctx, UniformSmallDataset(), config);
  EXPECT_EQ(plan.algorithm, Algorithm::kVJ) << plan.rationale;
  EXPECT_EQ(plan.delta, 0u);
  EXPECT_FALSE(plan.adaptive_repartition);
}

TEST(PlannerGoldenTest, DuplicateHeavyPicksCl) {
  Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.3;
  config.theta_c = 0.02;
  const JoinPlan plan = MustPlan(&ctx, DuplicateHeavyDataset(), config);
  EXPECT_EQ(plan.algorithm, Algorithm::kCL) << plan.rationale;
  // CL plans carry the measured delta plus the adaptive safety net.
  EXPECT_GT(plan.delta, 0u);
  EXPECT_TRUE(plan.adaptive_repartition);
  EXPECT_LT(plan.centroid_fraction, 0.5);
}

TEST(PlannerGoldenTest, HighSkewPicksClp) {
  // 24 workers, mirroring the paper's executor count (Table 3): with
  // enough slots the per-worker share of the quadratic work drops below
  // the straggler list, and capping it is what wins.
  Context ctx(TestCluster(/*workers=*/24));
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.4;
  config.theta_c = 0.02;
  const JoinPlan plan = MustPlan(&ctx, HighSkewDataset(), config);
  EXPECT_EQ(plan.algorithm, Algorithm::kCLP) << plan.rationale;
  EXPECT_GT(plan.delta, 0u);
  EXPECT_GT(plan.skew_ratio, 2.0);
}

TEST(PlannerTest, TrivialAndInvalidInputs) {
  Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.2;
  RankingDataset empty;
  empty.k = 10;
  const auto plan = plan::PlanJoin(&ctx, empty, config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kVJ);

  config.theta = 1.5;
  EXPECT_FALSE(plan::PlanJoin(&ctx, SmallSkewedDataset(), config).ok());
}

TEST(PlannerTest, ThetaCShrinksUntilClIsFeasible) {
  Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  // theta + 2*theta_c would reach the maximum distance: the planner must
  // shrink theta_c instead of failing or proposing an invalid CL plan.
  config.theta = 0.6;
  config.theta_c = 0.6;
  const JoinPlan plan = MustPlan(&ctx, SmallSkewedDataset(5, 300), config);
  const SimilarityJoinConfig concrete = plan::ApplyPlan(config, plan);
  EXPECT_TRUE(concrete.Validate(10).ok()) << plan.rationale;
}

TEST(PlannerTest, PlanJsonAndSummaryCarryTheDecision) {
  Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.2;
  const JoinPlan plan = MustPlan(&ctx, SmallSkewedDataset(9, 400), config);
  const std::string json = plan.ToJson();
  EXPECT_NE(json.find("\"algorithm\":\""), std::string::npos);
  EXPECT_NE(json.find("\"strategies\":["), std::string::npos);
  EXPECT_NE(json.find("\"rationale\":\""), std::string::npos);
  // Every strategy shows up in the comparison table.
  EXPECT_NE(json.find("\"vj\""), std::string::npos);
  EXPECT_NE(json.find("\"cl\""), std::string::npos);
  EXPECT_NE(json.find("\"cl-p\""), std::string::npos);
  EXPECT_NE(plan.Summary().find("plan: "), std::string::npos);
}

// ---------------------------------------------------------------------
// Auto == explicit identity, and the plan surfaces on the result.

TEST(PlannerExecutionTest, AutoMatchesExplicitAndTruth) {
  PinnedEnv pinned;
  const RankingDataset data = SmallSkewedDataset(21, 500);
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kAuto;
  config.theta = 0.2;
  config.theta_c = 0.05;

  Context plan_ctx(TestCluster());
  const JoinPlan plan = MustPlan(&plan_ctx, data, config);

  Context auto_ctx(TestCluster());
  auto auto_result = RunSimilarityJoin(&auto_ctx, data, config);
  ASSERT_TRUE(auto_result.ok()) << auto_result.status().ToString();
  EXPECT_FALSE(auto_result->plan_json.empty());
  // The planner decision is rendered into the DOT header annotation.
  EXPECT_EQ(auto_ctx.plan_annotation(), plan.Summary());

  Context explicit_ctx(TestCluster());
  auto explicit_result = RunSimilarityJoin(
      &explicit_ctx, data, plan::ApplyPlan(config, plan));
  ASSERT_TRUE(explicit_result.ok())
      << explicit_result.status().ToString();
  EXPECT_TRUE(explicit_result->plan_json.empty());

  EXPECT_EQ(PairSet(auto_result->pairs), PairSet(explicit_result->pairs));
  EXPECT_EQ(PairSet(auto_result->pairs), Truth(data, 0.2));
}

// ---------------------------------------------------------------------
// Runtime skew splitting: split == unsplit identical results, with and
// without chaos injection; the adaptive CL -> CL-P upgrade.

TEST(SkewSplitTest, SplitAndUnsplitRunsAgreeOnPairs) {
  PinnedEnv pinned;
  const RankingDataset data = SmallSkewedDataset(31, 500);
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kVJ;
  config.theta = 0.25;

  Context plain_ctx(TestCluster());
  auto plain = RunSimilarityJoin(&plain_ctx, data, config);
  ASSERT_TRUE(plain.ok());

  // A tiny threshold forces every hash-keyed shuffle bucket to split.
  ScopedEnv split("RANKJOIN_SPLIT_PARTITION_BYTES", "256");
  Context split_ctx(TestCluster());
  auto split_result = RunSimilarityJoin(&split_ctx, data, config);
  ASSERT_TRUE(split_result.ok());
  EXPECT_GT(split_ctx.metrics().TotalSplitPartitions(), 0);

  EXPECT_EQ(PairSet(plain->pairs), PairSet(split_result->pairs));
  EXPECT_EQ(PairSet(plain->pairs), Truth(data, 0.25));
}

TEST(SkewSplitTest, SplitSurvivesChaosInjection) {
  PinnedEnv pinned;
  const RankingDataset data = SmallSkewedDataset(33, 400);
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kCL;
  config.theta = 0.2;
  config.theta_c = 0.05;

  Context plain_ctx(TestCluster());
  auto plain = RunSimilarityJoin(&plain_ctx, data, config);
  ASSERT_TRUE(plain.ok());

  ScopedEnv split("RANKJOIN_SPLIT_PARTITION_BYTES", "512");
  ScopedEnv budget("RANKJOIN_SHUFFLE_BUDGET_BYTES", "4096");
  ScopedEnv fault("RANKJOIN_FAULT_SPEC",
                  "task_throw:p=0.05;spill_corrupt:p=0.1;seed=7");
  Context chaos_ctx(TestCluster());
  auto chaos = RunSimilarityJoin(&chaos_ctx, data, config);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  EXPECT_EQ(PairSet(plain->pairs), PairSet(chaos->pairs));
}

TEST(SkewSplitTest, AdaptiveClUpgradesOnMeasuredSkew) {
  PinnedEnv pinned;
  const RankingDataset data = SmallSkewedDataset(35, 500);
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kCL;
  config.theta = 0.2;
  config.theta_c = 0.05;
  config.adaptive_repartition = true;
  config.delta = 1;  // every posting list is "oversized": must upgrade

  minispark::Context::Options options = TestCluster();
  options.trace_level = minispark::TraceLevel::kCounters;
  Context ctx(options);
  auto adaptive = RunSimilarityJoin(&ctx, data, config);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();
  uint64_t upgrades = 0;
  for (const auto& [name, value] : ctx.counters().Snapshot()) {
    if (name == "repartition.skew_upgrades") upgrades = value;
  }
  EXPECT_GE(upgrades, 1u);

  // The upgraded run still produces the exact CL result.
  Context plain_ctx(TestCluster());
  SimilarityJoinConfig plain_config = config;
  plain_config.adaptive_repartition = false;
  plain_config.delta = 0;
  auto plain = RunSimilarityJoin(&plain_ctx, data, plain_config);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(PairSet(adaptive->pairs), PairSet(plain->pairs));

  // A generous delta measures, decides not to split, and stays CL.
  minispark::Context::Options quiet_options = TestCluster();
  quiet_options.trace_level = minispark::TraceLevel::kCounters;
  Context quiet_ctx(quiet_options);
  SimilarityJoinConfig quiet_config = config;
  quiet_config.delta = 1'000'000;
  auto quiet = RunSimilarityJoin(&quiet_ctx, data, quiet_config);
  ASSERT_TRUE(quiet.ok());
  uint64_t quiet_upgrades = 0;
  for (const auto& [name, value] : quiet_ctx.counters().Snapshot()) {
    if (name == "repartition.skew_upgrades") quiet_upgrades = value;
  }
  EXPECT_EQ(quiet_upgrades, 0u);
  EXPECT_EQ(PairSet(quiet->pairs), PairSet(plain->pairs));
}

}  // namespace
}  // namespace rankjoin
