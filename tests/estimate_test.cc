#include "join/estimate.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/generator.h"
#include "ranking/footrule.h"
#include "ranking/prefix.h"
#include "ranking/reorder.h"

namespace rankjoin {
namespace {

TEST(EstimateTest, UniformCaseClosedForm) {
  // s = 0: every item has frequency 1/v, so E[len] = n / v.
  EXPECT_NEAR(EstimatePostingListLength(1000, 0.0, 100), 10.0, 1e-9);
}

TEST(EstimateTest, SkewIncreasesExpectedLength) {
  const double flat = EstimatePostingListLength(1000, 0.0, 100);
  const double skewed = EstimatePostingListLength(1000, 1.0, 100);
  EXPECT_GT(skewed, flat);
}

TEST(EstimateTest, MonotoneInN) {
  EXPECT_LT(EstimatePostingListLength(100, 0.8, 50),
            EstimatePostingListLength(1000, 0.8, 50));
}

TEST(EstimateTest, MeasuredLengthsMatchIndexSize) {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 500;
  options.domain_size = 400;
  options.seed = 5;
  RankingDataset ds = GenerateDataset(options);
  ItemOrder order =
      ItemOrder::FromFrequencies(CountItemFrequencies(ds.rankings));
  auto ordered = MakeOrderedDataset(ds.rankings, order);
  const int prefix = 4;
  auto lengths = MeasurePostingListLengths(ordered, prefix);
  const size_t total =
      std::accumulate(lengths.begin(), lengths.end(), size_t{0});
  EXPECT_EQ(total, ds.size() * prefix);  // every prefix entry indexed once
  EXPECT_TRUE(std::is_sorted(lengths.rbegin(), lengths.rend()));
}

TEST(EstimateTest, PredictsOrderOfMagnitudeOnZipfData) {
  // Generate strongly skewed data WITHOUT frequency reordering, so the
  // full-k inverted index follows the generator's Zipf model and Eq. 4
  // should land within a small factor of the true average hit length.
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 2000;
  options.domain_size = 1000;
  options.zipf_skew = 0.8;
  options.near_duplicate_rate = 0.0;
  options.seed = 6;
  RankingDataset ds = GenerateDataset(options);
  auto ordered = MakeOrderedDataset(ds.rankings, ItemOrder());
  auto lengths = MeasurePostingListLengths(ordered, options.k);

  // Average list length weighted by list length = sum(len^2) / sum(len):
  // the expected length of the list a random token occurrence hits.
  double sum = 0;
  double sum_sq = 0;
  for (size_t len : lengths) {
    sum += static_cast<double>(len);
    sum_sq += static_cast<double>(len) * static_cast<double>(len);
  }
  const double measured = sum_sq / sum;
  const double estimated = EstimatePostingListLength(
      ds.size() * static_cast<size_t>(options.k), options.zipf_skew,
      options.domain_size);
  EXPECT_GT(estimated, measured / 4);
  EXPECT_LT(estimated, measured * 4);
}

TEST(SuggestDeltaTest, ScalesWithHeadroom) {
  const uint64_t d1 = SuggestDelta(10000, 0.9, 500, 2.0);
  const uint64_t d2 = SuggestDelta(10000, 0.9, 500, 4.0);
  EXPECT_GT(d2, d1);
  EXPECT_GE(d1, 1u);
}

TEST(SuggestDeltaTest, NeverZero) {
  EXPECT_GE(SuggestDelta(1, 0.0, 1000, 1.0), 1u);
}

}  // namespace
}  // namespace rankjoin
