#include "ranking/prefix.h"

#include <gtest/gtest.h>

#include <vector>

#include "ranking/footrule.h"

namespace rankjoin {
namespace {

TEST(MinOverlapTest, ClosedFormAgreement) {
  // o is the smallest overlap with (k-o)(k-o+1) <= raw_theta; check the
  // defining inequality on both sides for a sweep of thresholds.
  for (int k : {5, 10, 25}) {
    for (uint32_t t = 0; t < MaxFootrule(k); ++t) {
      const int o = MinOverlap(t, k);
      const uint32_t m = static_cast<uint32_t>(k - o);
      EXPECT_LE(m * (m + 1), t) << "k=" << k << " t=" << t;
      if (o > 0) {
        const uint32_t m1 = m + 1;  // overlap o-1
        EXPECT_GT(m1 * (m1 + 1), t) << "k=" << k << " t=" << t;
      }
    }
  }
}

TEST(MinOverlapTest, ZeroThresholdNeedsFullOverlap) {
  EXPECT_EQ(MinOverlap(0, 10), 10);
  EXPECT_EQ(MinOverlap(1, 10), 10);  // distance 1 impossible, 2 via swap
  EXPECT_EQ(MinOverlap(2, 10), 9);
}

TEST(OverlapPrefixTest, PaperRegimeValues) {
  // k = 10: raw thresholds for theta in {0.1, 0.2, 0.3, 0.4}.
  EXPECT_EQ(OverlapPrefix(RawThreshold(0.1, 10), 10), 3);   // o = 8
  EXPECT_EQ(OverlapPrefix(RawThreshold(0.2, 10), 10), 5);   // o = 6
  EXPECT_EQ(OverlapPrefix(RawThreshold(0.3, 10), 10), 6);   // o = 5
  EXPECT_EQ(OverlapPrefix(RawThreshold(0.4, 10), 10), 5 + 2);
}

TEST(OverlapPrefixTest, GrowsWithThreshold) {
  int last = 0;
  for (double theta : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    const int p = OverlapPrefix(RawThreshold(theta, 10), 10);
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(OverlapPrefixTest, MinimumDistanceConstruction) {
  // Two rankings overlapping in exactly o items have distance at least
  // (k-o)(k-o+1); build the witness pair to show tightness.
  const int k = 6;
  for (int o = 1; o <= k; ++o) {
    std::vector<ItemId> a_items;
    std::vector<ItemId> b_items;
    // Shared items at the top ranks, disjoint tails.
    for (int r = 0; r < o; ++r) {
      a_items.push_back(static_cast<ItemId>(r));
      b_items.push_back(static_cast<ItemId>(r));
    }
    for (int r = o; r < k; ++r) {
      a_items.push_back(static_cast<ItemId>(100 + r));
      b_items.push_back(static_cast<ItemId>(200 + r));
    }
    Ranking a(0, a_items);
    Ranking b(1, b_items);
    const uint32_t m = static_cast<uint32_t>(k - o);
    EXPECT_EQ(FootruleDistance(a, b), m * (m + 1));
  }
}

TEST(OrderedPrefixTest, PaperLemma41Example) {
  // Figure 1: k = 5, first p = 2 items disjoint, minimum distance
  // L(2,5) = 8. So for raw_theta = 8 the prefix must be 3; for 7 it is 2.
  EXPECT_EQ(OrderedPrefix(8, 5), 3);
  EXPECT_EQ(OrderedPrefix(7, 5), 2);
  EXPECT_EQ(OrderedPrefix(1, 5), 1);
}

TEST(OrderedPrefixTest, MatchesClosedForm) {
  // p = floor(sqrt(raw/2)) + 1 wherever the formula applies.
  for (int k : {10, 25}) {
    for (uint32_t t = 0; 2 * t < static_cast<uint32_t>(k * k); ++t) {
      const int p = OrderedPrefix(t, k);
      EXPECT_GT(2u * p * p, t);
      if (p > 1) {
        EXPECT_LE(2u * (p - 1) * (p - 1), t);
      }
    }
  }
}

TEST(OrderedPrefixTest, DisjointPrefixDistanceWitness) {
  // Rankings sharing all items but with the first p of each placed at
  // the following p positions of the other reach exactly 2*p^2 (the
  // L(p, k) bound the lemma's proof constructs).
  const int p = 2;
  // k = 6; a: [0 1 2 3 4 5]; b: [2 3 0 1 4 5] — size-p blocks swapped.
  Ranking a(0, {0, 1, 2, 3, 4, 5});
  Ranking b(1, {2, 3, 0, 1, 4, 5});
  EXPECT_EQ(FootruleDistance(a, b), static_cast<uint32_t>(2 * p * p));
}

TEST(OrderedPrefixTest, Applicability) {
  EXPECT_TRUE(OrderedPrefixApplicable(RawThreshold(0.4, 10), 10));
  EXPECT_FALSE(OrderedPrefixApplicable(56, 10));  // 2*56 > 100
  EXPECT_TRUE(OrderedPrefixApplicable(49, 10));
}

TEST(OrderedPrefixTest, TighterThanOverlapPrefixInPractice) {
  // The paper notes the positional bound gives slightly tighter (or
  // equal) prefixes in its regime.
  for (double theta : {0.1, 0.2, 0.3}) {
    const uint32_t raw = RawThreshold(theta, 10);
    EXPECT_LE(OrderedPrefix(raw, 10), OverlapPrefix(raw, 10)) << theta;
  }
}

}  // namespace
}  // namespace rankjoin
