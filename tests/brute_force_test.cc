#include "join/brute_force.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "ranking/footrule.h"

namespace rankjoin {
namespace {

TEST(BruteForceTest, HandComputedPairs) {
  RankingDataset ds;
  ds.k = 3;
  ds.rankings = {
      Ranking(0, {1, 2, 3}),
      Ranking(1, {2, 1, 3}),   // distance 2 to ranking 0
      Ranking(2, {7, 8, 9}),   // disjoint from both
  };
  // Raw threshold for theta: MaxFootrule(3) = 12; theta = 0.2 -> raw 2.
  JoinResult result = BruteForceJoin(ds, 0.2);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], MakeResultPair(0, 1));
  EXPECT_EQ(result.stats.candidates, 3u);
  EXPECT_EQ(result.stats.result_pairs, 1u);
}

TEST(BruteForceTest, ThetaZeroFindsExactDuplicates) {
  RankingDataset ds;
  ds.k = 3;
  ds.rankings = {
      Ranking(0, {1, 2, 3}),
      Ranking(1, {1, 2, 3}),
      Ranking(2, {1, 3, 2}),
  };
  JoinResult result = BruteForceJoin(ds, 0.0);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], MakeResultPair(0, 1));
}

TEST(BruteForceTest, EmptyAndSingletonDatasets) {
  RankingDataset ds;
  ds.k = 5;
  EXPECT_TRUE(BruteForceJoin(ds, 0.3).pairs.empty());
  ds.rankings = {Ranking(0, {1, 2, 3, 4, 5})};
  EXPECT_TRUE(BruteForceJoin(ds, 0.3).pairs.empty());
}

TEST(BruteForceTest, PairsAreNormalizedAndUnique) {
  GeneratorOptions options;
  options.num_rankings = 200;
  options.domain_size = 150;
  options.seed = 17;
  RankingDataset ds = GenerateDataset(options);
  JoinResult result = BruteForceJoin(ds, 0.3);
  std::set<ResultPair> seen;
  for (const ResultPair& p : result.pairs) {
    EXPECT_LT(p.first, p.second);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pair";
  }
}

TEST(BruteForceTest, LargerThetaIsSuperset) {
  GeneratorOptions options;
  options.num_rankings = 150;
  options.domain_size = 100;
  options.seed = 19;
  RankingDataset ds = GenerateDataset(options);
  auto small = BruteForceJoin(ds, 0.2);
  auto large = BruteForceJoin(ds, 0.4);
  std::set<ResultPair> large_set(large.pairs.begin(), large.pairs.end());
  EXPECT_GE(large.pairs.size(), small.pairs.size());
  for (const ResultPair& p : small.pairs) {
    EXPECT_TRUE(large_set.count(p)) << p.first << "," << p.second;
  }
}

}  // namespace
}  // namespace rankjoin
