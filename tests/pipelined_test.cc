// Pipelined producer/consumer stage execution vs the classic barrier:
// every wide operation and every join pipeline must produce identical
// results in both modes — including byte-identical partition order
// (pipelined readers consume mapper-major, exactly like the barrier
// read), and including under chaos fault injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/similarity_join.h"
#include "jaccard/jaccard_join.h"
#include "minispark/context.h"
#include "minispark/dataset.h"
#include "minispark/extra_ops.h"
#include "tests/test_util.h"

namespace rankjoin::minispark {
namespace {

using rankjoin::testutil::PairSet;
using rankjoin::testutil::SmallSkewedDataset;
using rankjoin::testutil::TestCluster;

/// Pins an environment variable for one test's scope (same pattern as
/// fault_test.cc): CI runs the suite under chaos/pipelined overrides,
/// which would otherwise clobber the Options a test sets explicitly.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

struct PinnedEnv {
  ScopedEnv fault{"RANKJOIN_FAULT_SPEC", nullptr};
  ScopedEnv budget{"RANKJOIN_SHUFFLE_BUDGET_BYTES", nullptr};
  ScopedEnv trace{"RANKJOIN_TRACE_LEVEL", nullptr};
  ScopedEnv lint{"RANKJOIN_LINT_LEVEL", nullptr};
  ScopedEnv pipelined{"RANKJOIN_PIPELINED_STAGES", nullptr};
  ScopedEnv ckpt_dir{"RANKJOIN_CHECKPOINT_DIR", nullptr};
  ScopedEnv resume{"RANKJOIN_RESUME", nullptr};
  ScopedEnv deadline{"RANKJOIN_JOB_DEADLINE_MS", nullptr};
};

/// Runs `job` under a barrier context and a pipelined context (both with
/// a tiny shuffle budget so spilling is exercised) and returns both
/// collected outputs for exact comparison.
template <typename Job>
auto RunBothModes(Job&& job) {
  auto run = [&job](bool pipelined) {
    Context::Options options = TestCluster();
    options.shuffle_memory_budget_bytes = 256;  // force spills
    options.pipelined_stages = pipelined;
    Context ctx(options);
    return job(&ctx);
  };
  return std::make_pair(run(false), run(true));
}

std::vector<std::pair<int, int>> IntPairs(int n, int key_mod) {
  std::vector<std::pair<int, int>> data;
  data.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) data.push_back({i % key_mod, i});
  return data;
}

// ---------------------------------------------------------------------
// Operation-level equality: each wide op, barrier vs pipelined
// ---------------------------------------------------------------------

TEST(PipelinedOpTest, PartitionByKeyIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    auto ds = Parallelize(ctx, IntPairs(500, 13), 8);
    return *PartitionByKey(ds, 8).TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, GroupByKeyIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    auto ds = Parallelize(ctx, IntPairs(400, 7), 8);
    return *GroupByKey(ds, 8).TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, ReduceByKeyIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    auto ds = Parallelize(ctx, IntPairs(600, 11), 8);
    return *ReduceByKey(ds, [](int a, int b) { return a + b; }, 8)
                .TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, DistinctIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    std::vector<int> data;
    for (int i = 0; i < 500; ++i) data.push_back(i % 60);
    return *Distinct(Parallelize(ctx, std::move(data), 8), 8).TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, JoinIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    auto left = Parallelize(ctx, IntPairs(200, 17), 8);
    auto right = Parallelize(ctx, IntPairs(150, 17), 4);
    return *Join(left, right, 8).TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, CoGroupIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    auto left = Parallelize(ctx, IntPairs(200, 9), 8);
    auto right = Parallelize(ctx, IntPairs(120, 9), 4);
    return *CoGroup(left, right, 8).TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, RepartitionIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    std::vector<int> data;
    for (int i = 0; i < 500; ++i) data.push_back(i);
    return *Parallelize(ctx, std::move(data), 16)
                .Repartition(5)
                .TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

TEST(PipelinedOpTest, SortByKeyIdentical) {
  PinnedEnv env;
  auto [barrier, pipelined] = RunBothModes([](Context* ctx) {
    std::vector<std::pair<int, int>> data;
    for (int i = 0; i < 400; ++i) data.push_back({(i * 37) % 101, i});
    return *SortByKey(Parallelize(ctx, std::move(data), 8), 8).TryCollect();
  });
  EXPECT_EQ(barrier, pipelined);
}

// ---------------------------------------------------------------------
// Pipeline-level equality: all seven join pipelines
// ---------------------------------------------------------------------

/// Runs all five footrule pipelines plus the two Jaccard joins in the
/// given mode and returns their result-pair sets in a fixed order.
std::vector<std::set<ResultPair>> RunAllPipelines(
    const RankingDataset& ds, bool pipelined,
    const std::string& fault_spec = "") {
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 4096;  // exercise spilling
  options.pipelined_stages = pipelined;
  options.retry_backoff_ms = 0;
  options.fault_spec = fault_spec;
  Context ctx(options);

  std::vector<std::set<ResultPair>> results;
  for (Algorithm algorithm : {Algorithm::kVJ, Algorithm::kVJNL,
                              Algorithm::kCL, Algorithm::kCLP,
                              Algorithm::kVSmart}) {
    SimilarityJoinConfig config;
    config.algorithm = algorithm;
    config.theta = 0.3;
    config.delta = 50;  // CL-P
    auto result = RunSimilarityJoin(&ctx, ds, config);
    EXPECT_TRUE(result.ok()) << AlgorithmName(algorithm) << ": "
                             << result.status();
    results.push_back(result.ok() ? PairSet(result->pairs)
                                  : std::set<ResultPair>{});
  }
  JaccardJoinOptions jaccard;
  jaccard.theta = 0.4;
  auto jvj = RunJaccardVjJoin(&ctx, ds, jaccard);
  EXPECT_TRUE(jvj.ok()) << jvj.status();
  results.push_back(jvj.ok() ? PairSet(jvj->pairs) : std::set<ResultPair>{});
  auto jcl = RunJaccardClusterJoin(&ctx, ds, jaccard);
  EXPECT_TRUE(jcl.ok()) << jcl.status();
  results.push_back(jcl.ok() ? PairSet(jcl->pairs) : std::set<ResultPair>{});
  return results;
}

TEST(PipelinedJoinTest, AllSevenPipelinesMatchBarrier) {
  PinnedEnv env;
  RankingDataset ds = SmallSkewedDataset(21, 300);
  const auto barrier = RunAllPipelines(ds, false);
  const auto pipelined = RunAllPipelines(ds, true);
  ASSERT_EQ(barrier.size(), 7u);
  for (size_t i = 0; i < barrier.size(); ++i) {
    EXPECT_EQ(barrier[i], pipelined[i]) << "pipeline #" << i;
    EXPECT_FALSE(barrier[i].empty()) << "pipeline #" << i << " found nothing";
  }
}

TEST(PipelinedJoinTest, MatchesBarrierUnderChaos) {
  PinnedEnv env;
  RankingDataset ds = SmallSkewedDataset(22, 250);
  const std::string chaos = "task_throw:p=0.03;spill_corrupt:p=0.3;seed=11";
  const auto clean = RunAllPipelines(ds, false);
  const auto pipelined = RunAllPipelines(ds, true, chaos);
  ASSERT_EQ(clean.size(), pipelined.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i], pipelined[i]) << "pipeline #" << i;
  }
}

// ---------------------------------------------------------------------
// Failure propagation: a dead producer must not hang the readers
// ---------------------------------------------------------------------

TEST(PipelinedFailureTest, MapFailureSurfacesWithoutHanging) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.pipelined_stages = true;
  options.max_task_retries = 1;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  auto pairs = Parallelize(&ctx, IntPairs(400, 5), 8)
                   .Map([](std::pair<int, int> kv) {
                     if (kv.second == 123) {
                       throw std::runtime_error("poison pill");
                     }
                     return kv;
                   });
  auto result = GroupByKey(pairs, 8).TryCollect();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("poison pill"),
            std::string::npos);
}

TEST(PipelinedFailureTest, InjectedExhaustionSurfaces) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.pipelined_stages = true;
  options.fault_spec = "task_throw:p=1;seed=3";  // every attempt fails
  options.max_task_retries = 1;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  auto result =
      PartitionByKey(Parallelize(&ctx, IntPairs(100, 4), 4), 4).TryCollect();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------
// Options plumbing
// ---------------------------------------------------------------------

TEST(PipelinedOptionsTest, EnvOverrideTogglesMode) {
  PinnedEnv env;
  // The Context constructor applies the environment overrides.
  {
    ScopedEnv on{"RANKJOIN_PIPELINED_STAGES", "1"};
    Context ctx(TestCluster());
    EXPECT_TRUE(ctx.pipelined_stages());
  }
  {
    ScopedEnv off{"RANKJOIN_PIPELINED_STAGES", "off"};
    Context::Options options = TestCluster();
    options.pipelined_stages = true;
    Context ctx(options);
    EXPECT_FALSE(ctx.pipelined_stages());
  }
}

TEST(PipelinedOptionsTest, QueueDepthResolvesToWorkerFloor) {
  PinnedEnv env;
  Context::Options options = TestCluster(/*workers=*/2);
  options.pipelined_stages = true;
  Context ctx(options);
  EXPECT_GE(ctx.pipelined_queue_depth(), 4);  // max(4, num_workers)
  options.pipelined_queue_depth = 9;
  Context explicit_ctx(options);
  EXPECT_EQ(explicit_ctx.pipelined_queue_depth(), 9);
}

}  // namespace
}  // namespace rankjoin::minispark
