// Randomized and exhaustive cross-checks of the optimized kernels
// against naive reference implementations, plus direct validation of
// the prefix-filtering completeness theory the joins rest on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "data/generator.h"
#include "jaccard/jaccard.h"
#include "ranking/footrule.h"
#include "ranking/prefix.h"
#include "ranking/reorder.h"

namespace rankjoin {
namespace {

/// Naive Footrule: dense rank vectors over the union domain.
uint32_t NaiveFootrule(const Ranking& a, const Ranking& b) {
  std::unordered_set<ItemId> domain(a.items().begin(), a.items().end());
  domain.insert(b.items().begin(), b.items().end());
  uint32_t distance = 0;
  for (ItemId item : domain) {
    int ra = a.RankOf(item);
    int rb = b.RankOf(item);
    if (ra < 0) ra = a.k();
    if (rb < 0) rb = b.k();
    distance += static_cast<uint32_t>(std::abs(ra - rb));
  }
  return distance;
}

/// Naive overlap via hash set.
int NaiveOverlap(const Ranking& a, const Ranking& b) {
  std::unordered_set<ItemId> in_a(a.items().begin(), a.items().end());
  int overlap = 0;
  for (ItemId item : b.items()) overlap += in_a.count(item) > 0;
  return overlap;
}

Ranking RandomRanking(RankingId id, int k, uint32_t domain, Rng& rng) {
  std::vector<ItemId> items;
  std::unordered_set<ItemId> seen;
  while (static_cast<int>(items.size()) < k) {
    ItemId item = static_cast<ItemId>(rng.Uniform(domain));
    if (seen.insert(item).second) items.push_back(item);
  }
  return Ranking(id, items);
}

TEST(FuzzReferenceTest, FootruleMatchesNaive) {
  Rng rng(9001);
  for (int trial = 0; trial < 3000; ++trial) {
    const int k = 1 + static_cast<int>(rng.Uniform(12));
    const uint32_t domain = static_cast<uint32_t>(k) +
                            static_cast<uint32_t>(rng.Uniform(20));
    Ranking a = RandomRanking(0, k, domain, rng);
    Ranking b = RandomRanking(1, k, domain, rng);
    EXPECT_EQ(FootruleDistance(a, b), NaiveFootrule(a, b))
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST(FuzzReferenceTest, MergeJoinDistanceMatchesNaive) {
  Rng rng(9002);
  ItemOrder identity;
  for (int trial = 0; trial < 3000; ++trial) {
    const int k = 1 + static_cast<int>(rng.Uniform(12));
    const uint32_t domain = static_cast<uint32_t>(k) +
                            static_cast<uint32_t>(rng.Uniform(25));
    Ranking a = RandomRanking(0, k, domain, rng);
    Ranking b = RandomRanking(1, k, domain, rng);
    OrderedRanking oa = MakeOrdered(a, identity);
    OrderedRanking ob = MakeOrdered(b, identity);
    EXPECT_EQ(FootruleDistance(oa, ob), NaiveFootrule(a, b));
    EXPECT_EQ(SetOverlap(oa, ob), NaiveOverlap(a, b));
  }
}

TEST(FuzzReferenceTest, BoundedDistanceConsistentWithFull) {
  Rng rng(9003);
  ItemOrder identity;
  for (int trial = 0; trial < 2000; ++trial) {
    const int k = 2 + static_cast<int>(rng.Uniform(10));
    const uint32_t domain = static_cast<uint32_t>(k) +
                            static_cast<uint32_t>(rng.Uniform(15));
    OrderedRanking a = MakeOrdered(RandomRanking(0, k, domain, rng),
                                   identity);
    OrderedRanking b = MakeOrdered(RandomRanking(1, k, domain, rng),
                                   identity);
    const uint32_t full = FootruleDistance(a, b);
    const uint32_t bound =
        static_cast<uint32_t>(rng.Uniform(MaxFootrule(k) + 1));
    auto bounded = FootruleDistanceBounded(a, b, bound);
    if (full <= bound) {
      ASSERT_TRUE(bounded.has_value());
      EXPECT_EQ(*bounded, full);
    } else {
      EXPECT_FALSE(bounded.has_value());
    }
  }
}

/// Exhaustive completeness of overlap-prefix filtering: for every pair
/// of top-k lists over a small universe, if the pair qualifies for a
/// threshold, their canonical-order prefixes of size OverlapPrefix must
/// intersect. This validates the theory the distributed pipelines rely
/// on, independent of the pipelines themselves.
TEST(FuzzReferenceTest, OverlapPrefixCompletenessExhaustive) {
  const int k = 3;
  const uint32_t universe = 6;
  // All k-permutations of the universe.
  std::vector<Ranking> lists;
  std::vector<ItemId> current;
  std::vector<bool> used(universe, false);
  auto enumerate = [&](auto&& self) -> void {
    if (static_cast<int>(current.size()) == k) {
      lists.emplace_back(static_cast<RankingId>(lists.size()), current);
      return;
    }
    for (ItemId item = 0; item < universe; ++item) {
      if (used[item]) continue;
      used[item] = true;
      current.push_back(item);
      self(self);
      current.pop_back();
      used[item] = false;
    }
  };
  enumerate(enumerate);
  ASSERT_EQ(lists.size(), 120u);  // 6*5*4

  // Canonical order: any fixed total order works; use a scrambled one
  // to avoid accidentally aligning with item ids.
  std::unordered_map<ItemId, uint32_t> freq = {{0, 3}, {1, 1}, {2, 5},
                                               {3, 2}, {4, 6}, {5, 4}};
  ItemOrder order = ItemOrder::FromFrequencies(freq);
  auto ordered = MakeOrderedDataset(lists, order);

  for (uint32_t raw_theta = 0; raw_theta < MaxFootrule(k); ++raw_theta) {
    const size_t p = static_cast<size_t>(OverlapPrefix(raw_theta, k));
    for (size_t i = 0; i < ordered.size(); ++i) {
      for (size_t j = i + 1; j < ordered.size(); ++j) {
        if (FootruleDistance(ordered[i], ordered[j]) > raw_theta) continue;
        bool shared = false;
        for (size_t x = 0; x < p && !shared; ++x) {
          for (size_t y = 0; y < p && !shared; ++y) {
            shared = ordered[i].canonical[x].item ==
                     ordered[j].canonical[y].item;
          }
        }
        ASSERT_TRUE(shared)
            << "prefix filter would miss pair (" << i << "," << j
            << ") at raw_theta " << raw_theta;
      }
    }
  }
}

/// Same exhaustive completeness for the ordered prefix (Lemma 4.1),
/// within its validity region raw_theta < k^2/2.
TEST(FuzzReferenceTest, OrderedPrefixCompletenessExhaustive) {
  const int k = 3;
  const uint32_t universe = 6;
  std::vector<Ranking> lists;
  std::vector<ItemId> current;
  std::vector<bool> used(universe, false);
  auto enumerate = [&](auto&& self) -> void {
    if (static_cast<int>(current.size()) == k) {
      lists.emplace_back(static_cast<RankingId>(lists.size()), current);
      return;
    }
    for (ItemId item = 0; item < universe; ++item) {
      if (used[item]) continue;
      used[item] = true;
      current.push_back(item);
      self(self);
      current.pop_back();
      used[item] = false;
    }
  };
  enumerate(enumerate);

  for (uint32_t raw_theta = 0; OrderedPrefixApplicable(raw_theta, k);
       ++raw_theta) {
    const int p = OrderedPrefix(raw_theta, k);
    for (size_t i = 0; i < lists.size(); ++i) {
      for (size_t j = i + 1; j < lists.size(); ++j) {
        if (FootruleDistance(lists[i], lists[j]) > raw_theta) continue;
        // The ordered prefix is the best-ranked p items of each list.
        bool shared = false;
        for (int x = 0; x < p && !shared; ++x) {
          for (int y = 0; y < p && !shared; ++y) {
            shared = lists[i].ItemAt(x) == lists[j].ItemAt(y);
          }
        }
        ASSERT_TRUE(shared)
            << "ordered prefix would miss pair at raw_theta " << raw_theta;
      }
    }
  }
}

/// Jaccard prefix completeness, randomized: qualifying pairs must share
/// a canonical prefix token.
TEST(FuzzReferenceTest, JaccardPrefixCompletenessRandom) {
  GeneratorOptions options;
  options.k = 8;
  options.num_rankings = 150;
  options.domain_size = 40;
  options.seed = 9004;
  RankingDataset ds = GenerateDataset(options);
  ItemOrder order =
      ItemOrder::FromFrequencies(CountItemFrequencies(ds.rankings));
  auto ordered = MakeOrderedDataset(ds.rankings, order);
  for (double theta : {0.2, 0.5, 0.8}) {
    const size_t p = static_cast<size_t>(JaccardPrefix(theta, ds.k));
    for (size_t i = 0; i < ordered.size(); ++i) {
      for (size_t j = i + 1; j < ordered.size(); ++j) {
        if (!JaccardQualifies(SetOverlap(ordered[i], ordered[j]), ds.k,
                              theta)) {
          continue;
        }
        bool shared = false;
        for (size_t x = 0; x < p && !shared; ++x) {
          for (size_t y = 0; y < p && !shared; ++y) {
            shared = ordered[i].canonical[x].item ==
                     ordered[j].canonical[y].item;
          }
        }
        ASSERT_TRUE(shared) << "jaccard prefix miss at theta " << theta;
      }
    }
  }
}

}  // namespace
}  // namespace rankjoin
