// Plan-linter tests (minispark/lint.h): one fixture per diagnostic
// code MS001..MS006 (each triggers exactly once, and the fixed variant
// of the same plan is clean), level parsing and the RANKJOIN_LINT_LEVEL
// env override, Collect()-time warn/error behavior including the
// error-mode abort, lint-clean assertions for every production join
// pipeline, and a regression test that ExplainDot() output with
// diagnostics embedded stays valid DOT.

#include "minispark/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/similarity_join.h"
#include "join/rs_join.h"
#include "minispark/dataset.h"
#include "minispark/extra_ops.h"
#include "minispark/serde.h"
#include "test_util.h"

namespace rankjoin::minispark {
namespace {

using Kv = std::pair<uint32_t, uint32_t>;

std::vector<Kv> MakeKv(size_t n) {
  std::vector<Kv> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back({static_cast<uint32_t>(i % 16),
                    static_cast<uint32_t>(i)});
  }
  return data;
}

Context::Options LintCluster(LintLevel level = LintLevel::kOff) {
  Context::Options options = testutil::TestCluster();
  options.lint_level = level;
  return options;
}

/// Pins an environment variable for one test's scope, restoring the
/// prior state on destruction. Tests that depend on a specific lint
/// level must pin RANKJOIN_LINT_LEVEL: CI runs this whole suite under
/// several values of the override, which would otherwise clobber the
/// Options level the test set.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// Filters diagnostics down to one code.
std::vector<LintDiagnostic> Only(const std::vector<LintDiagnostic>& diags,
                                 const std::string& code) {
  std::vector<LintDiagnostic> out;
  for (const auto& d : diags) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

/// The canonical bad plan: a pending narrow chain feeding two consumers
/// without Cache() (MS001). With `fixed`, the chain is cached first and
/// the plan is clean.
Dataset<Kv> MultiConsumerPlan(Context* ctx, bool fixed) {
  auto ds = Parallelize(ctx, MakeKv(64), 4);
  auto shifted = ds.Map(
      [](const Kv& kv) { return Kv(kv.first, kv.second + 1); },
      "fixture/shift");
  if (fixed) shifted.Cache();
  auto evens = shifted.Filter(
      [](const Kv& kv) { return kv.second % 2 == 0; }, "fixture/evens");
  auto odds = shifted.Filter(
      [](const Kv& kv) { return kv.second % 2 == 1; }, "fixture/odds");
  return Union(evens, odds, "fixture/union");
}

TEST(LintLevelTest, ParsesNamesAndNumbers) {
  EXPECT_EQ(ParseLintLevel("off"), LintLevel::kOff);
  EXPECT_EQ(ParseLintLevel("0"), LintLevel::kOff);
  EXPECT_EQ(ParseLintLevel("warn"), LintLevel::kWarn);
  EXPECT_EQ(ParseLintLevel("WARNING"), LintLevel::kWarn);
  EXPECT_EQ(ParseLintLevel("1"), LintLevel::kWarn);
  EXPECT_EQ(ParseLintLevel("error"), LintLevel::kError);
  EXPECT_EQ(ParseLintLevel("Err"), LintLevel::kError);
  EXPECT_EQ(ParseLintLevel("2"), LintLevel::kError);
  EXPECT_EQ(ParseLintLevel("bogus"), LintLevel::kOff);
  EXPECT_STREQ(LintLevelName(LintLevel::kWarn), "warn");
  EXPECT_STREQ(LintSeverityName(LintSeverity::kError), "error");
}

TEST(LintLevelTest, EnvOverridesOptions) {
  {
    ScopedEnv env("RANKJOIN_LINT_LEVEL", "error");
    Context ctx(LintCluster(LintLevel::kOff));
    EXPECT_EQ(ctx.lint_level(), LintLevel::kError);
  }
  {
    ScopedEnv env("RANKJOIN_LINT_LEVEL", "warn");
    Context ctx(LintCluster(LintLevel::kError));
    EXPECT_EQ(ctx.lint_level(), LintLevel::kWarn);
  }
  {
    ScopedEnv env("RANKJOIN_LINT_LEVEL", nullptr);
    Context ctx(LintCluster(LintLevel::kWarn));
    EXPECT_EQ(ctx.lint_level(), LintLevel::kWarn);
  }
}

TEST(LintCheckTest, Ms001MultiConsumerPendingChain) {
  Context ctx(LintCluster());
  auto bad = MultiConsumerPlan(&ctx, /*fixed=*/false);
  std::vector<LintDiagnostic> diags = bad.Lint();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "MS001");
  EXPECT_EQ(diags[0].severity, LintSeverity::kError);
  EXPECT_NE(diags[0].node, nullptr);
  EXPECT_NE(diags[0].location.find("fixture/shift"), std::string::npos);

  auto fixed = MultiConsumerPlan(&ctx, /*fixed=*/true);
  EXPECT_TRUE(fixed.Lint().empty());
}

TEST(LintCheckTest, Ms001NotRaisedForConsumersOfMaterializedChain) {
  Context ctx(LintCluster());
  auto ds = Parallelize(&ctx, MakeKv(64), 4);
  auto shifted = ds.Map(
      [](const Kv& kv) { return Kv(kv.first, kv.second + 1); },
      "fixture/shift");
  // Forcing memoizes the handle: consumers attached afterwards read the
  // materialized partitions instead of re-running the chain, so they
  // must not trip the recompute check.
  shifted.Count();
  auto evens = shifted.Filter(
      [](const Kv& kv) { return kv.second % 2 == 0; }, "fixture/evens");
  auto odds = shifted.Filter(
      [](const Kv& kv) { return kv.second % 2 == 1; }, "fixture/odds");
  EXPECT_TRUE(Union(evens, odds, "fixture/union").Lint().empty());
}

TEST(LintCheckTest, Ms007SingleConsumerCache) {
  Context ctx(LintCluster());
  auto ds = Parallelize(&ctx, MakeKv(64), 4);
  auto shifted = ds.Map(
      [](const Kv& kv) { return Kv(kv.first, kv.second + 1); },
      "fixture/shift");
  shifted.Cache();
  // One consumer hangs off the pin: the materialization buys no reuse.
  auto evens = shifted.Filter(
      [](const Kv& kv) { return kv.second % 2 == 0; }, "fixture/evens");
  std::vector<LintDiagnostic> diags = Only(evens.Lint(), "MS007");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarning);
  EXPECT_NE(diags[0].node, nullptr);
  EXPECT_NE(diags[0].location.find("fixture/shift"), std::string::npos);
  EXPECT_NE(diags[0].message.find("exactly one consumer"),
            std::string::npos);
}

TEST(LintCheckTest, Ms007FixedByDroppingTheCache) {
  Context ctx(LintCluster());
  auto ds = Parallelize(&ctx, MakeKv(64), 4);
  auto shifted = ds.Map(
      [](const Kv& kv) { return Kv(kv.first, kv.second + 1); },
      "fixture/shift");
  // The MS007 fix when the chain must still run eagerly (e.g. to fill
  // stat slots): Force() materializes without pinning a cache node, so
  // the single-consumer plan below carries no wasted pin.
  shifted.Force();
  auto evens = shifted.Filter(
      [](const Kv& kv) { return kv.second % 2 == 0; }, "fixture/evens");
  EXPECT_TRUE(evens.Lint().empty());
}

TEST(LintCheckTest, Ms007NotRaisedForMultiConsumerOrRootCache) {
  Context ctx(LintCluster());
  // Two consumers: the pin earns its keep — this is the MS001 fix and
  // must stay clean under MS007 too.
  auto fixed = MultiConsumerPlan(&ctx, /*fixed=*/true);
  EXPECT_TRUE(Only(fixed.Lint(), "MS007").empty());

  // A cache at the DAG root has zero consumer edges in its own plan;
  // its reuse (repeated Collect(), later plans) is invisible to the
  // per-plan walk, so it is not flagged.
  auto ds = Parallelize(&ctx, MakeKv(64), 4);
  auto shifted = ds.Map(
      [](const Kv& kv) { return Kv(kv.first, kv.second + 1); },
      "fixture/shift");
  shifted.Cache();
  EXPECT_TRUE(shifted.Lint().empty());
}

TEST(LintCheckTest, Ms002RedundantBackToBackShuffles) {
  Context ctx(LintCluster());
  auto ds = Parallelize(&ctx, MakeKv(64), 4);
  auto placed = ds.Repartition(8, "fixture/place");
  auto grouped = GroupByKey(placed, 16, "fixture/group");
  std::vector<LintDiagnostic> diags = grouped.Lint();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "MS002");
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarning);
  EXPECT_NE(diags[0].location.find("fixture/place"), std::string::npos);
  EXPECT_NE(diags[0].message.find("incompatible partition counts"),
            std::string::npos);

  // Same partition count is still redundant placement, different text.
  auto same = GroupByKey(ds.Repartition(8, "fixture/place8"), 8,
                         "fixture/group8");
  std::vector<LintDiagnostic> same_diags = Only(same.Lint(), "MS002");
  ASSERT_EQ(same_diags.size(), 1u);
  EXPECT_NE(same_diags[0].message.find("redundant repartition"),
            std::string::npos);

  // Fixed: shuffle straight into the group — clean.
  EXPECT_TRUE(GroupByKey(ds, 16, "fixture/group").Lint().empty());
}

TEST(LintCheckTest, Ms003OversizedBroadcast) {
  Context::Options options = LintCluster();
  options.lint_broadcast_max_bytes = 64;
  Context ctx(options);
  ctx.MakeBroadcast(std::vector<uint64_t>(64), "fixture/bigBroadcast");
  ctx.MakeBroadcast(uint64_t{7}, "fixture/smallBroadcast");
  auto ds = Parallelize(&ctx, MakeKv(16), 2);
  std::vector<LintDiagnostic> diags = ds.Lint();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "MS003");
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(diags[0].node, nullptr);
  EXPECT_NE(diags[0].location.find("fixture/bigBroadcast"),
            std::string::npos);

  // A null root lints only the broadcast registry.
  LintSettings settings;
  settings.broadcast_max_bytes = 8;
  settings.broadcasts = {{"loose", 16}, {"tight", 4}};
  std::vector<LintDiagnostic> direct = LintPlan(nullptr, settings);
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0].code, "MS003");
  EXPECT_NE(direct[0].location.find("loose"), std::string::npos);
}

/// A shuffle record type deliberately outside every Serde<T>
/// specialization: not trivially copyable (std::string member) and not
/// one of the covered composite shapes.
struct NoSerdeRecord {
  std::string payload;
};

static_assert(!has_serde_v<NoSerdeRecord>,
              "fixture type must not be serializable");
static_assert(has_serde_v<std::pair<uint32_t, std::string>>,
              "covered composites must stay serializable");

TEST(LintCheckTest, Ms004SerdelessShuffleUnderSpillBudget) {
  Context::Options options = LintCluster();
  options.shuffle_memory_budget_bytes = 1 << 20;
  Context ctx(options);
  std::vector<NoSerdeRecord> records(32, NoSerdeRecord{"x"});
  auto ds = Parallelize(&ctx, records, 4);
  auto placed = ds.Repartition(8, "fixture/place");
  std::vector<LintDiagnostic> diags = placed.Lint();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "MS004");
  EXPECT_EQ(diags[0].severity, LintSeverity::kError);
  EXPECT_NE(diags[0].location.find("fixture/place"), std::string::npos);
  // The shuffle itself still works — resident-only.
  EXPECT_EQ(placed.Count(), 32u);

  // Without a spill budget the same plan is harmless. Probed through
  // LintPlan directly so a RANKJOIN_SHUFFLE_BUDGET_BYTES env override
  // (CI's forced-spill job) cannot re-arm the check.
  LintSettings no_budget = ctx.lint_settings();
  no_budget.shuffle_memory_budget_bytes = 0;
  EXPECT_TRUE(LintPlan(placed.plan_node().get(), no_budget).empty());
}

/// `iterations` rounds of per-iteration work (a narrow op) followed by
/// the same re-keying barrier — the shape of a driver-side loop that
/// rebuilds its shuffle every pass. The narrow op between barriers
/// keeps the fixture out of MS002 territory (the shuffles are not
/// back-to-back) so only the loop check can fire.
Dataset<Kv> LoopedBarrierPlan(Context* ctx, int iterations) {
  auto ds = Parallelize(ctx, MakeKv(64), 4);
  for (int i = 0; i < iterations; ++i) {
    auto stepped = ds.Map(
        [](const Kv& kv) { return Kv(kv.first, kv.second + 1); },
        "fixture/loopStep");
    ds = PartitionByKey(stepped, 8, "fixture/loopShuffle");
  }
  return ds;
}

TEST(LintCheckTest, Ms005BarrierRebuiltInLoop) {
  Context ctx(LintCluster());
  std::vector<LintDiagnostic> diags = LoopedBarrierPlan(&ctx, 3).Lint();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "MS005");
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarning);
  EXPECT_NE(diags[0].message.find("3 times"), std::string::npos);

  // One iteration fewer stays under the default threshold.
  Context shallow_ctx(LintCluster());
  EXPECT_TRUE(LoopedBarrierPlan(&shallow_ctx, 2).Lint().empty());

  // The threshold is configurable.
  Context strict_ctx(LintCluster());
  auto strict = LoopedBarrierPlan(&strict_ctx, 2);
  LintSettings settings = strict_ctx.lint_settings();
  settings.loop_repeat_threshold = 2;
  EXPECT_EQ(Only(LintPlan(strict.plan_node().get(), settings), "MS005")
                .size(),
            1u);
}

TEST(LintCheckTest, Ms006OversizedUnsplitShuffleBucket) {
  // Splitting disabled (split_partition_bytes = 0): the skewed shuffle
  // materializes one oversized bucket and records it on the plan node
  // without slice tasks. Linting with a tiny threshold flags it. The
  // env override is pinned: CI's adaptive job would otherwise enable
  // splitting and silence the diagnostic.
  ScopedEnv split_env("RANKJOIN_SPLIT_PARTITION_BYTES", nullptr);
  Context ctx(LintCluster());
  std::vector<Kv> skewed(64, Kv{1, 1});  // every record on one key
  auto grouped = PartitionByKey(Parallelize(&ctx, skewed, 4), 8,
                                "fixture/skewedShuffle");
  EXPECT_EQ(grouped.Count(), 64u);
  LintSettings settings = ctx.lint_settings();
  settings.split_partition_bytes = 64;
  std::vector<LintDiagnostic> diags =
      Only(LintPlan(grouped.plan_node().get(), settings), "MS006");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, LintSeverity::kWarning);
  EXPECT_NE(diags[0].location.find("fixture/skewedShuffle"),
            std::string::npos);

  // With runtime splitting enabled the same plan adds slice tasks and
  // the check stays quiet.
  Context::Options split_options = LintCluster();
  split_options.split_partition_bytes = 64;
  Context split_ctx(split_options);
  auto split_grouped =
      PartitionByKey(Parallelize(&split_ctx, skewed, 4), 8,
                     "fixture/skewedShuffle");
  EXPECT_EQ(split_grouped.Count(), 64u);
  EXPECT_TRUE(Only(split_grouped.Lint(), "MS006").empty());
}

TEST(LintCollectTest, WarnModeRecordsAndDeduplicates) {
  ScopedEnv env("RANKJOIN_LINT_LEVEL", "warn");
  Context ctx(LintCluster(LintLevel::kWarn));
  auto bad = MultiConsumerPlan(&ctx, /*fixed=*/false);
  EXPECT_EQ(bad.Collect().size(), 64u);
  ASSERT_EQ(ctx.lint_report().size(), 1u);
  EXPECT_EQ(ctx.lint_report()[0].code, "MS001");
  // Archived diagnostics must not point into a plan that may die.
  EXPECT_EQ(ctx.lint_report()[0].node, nullptr);
  // A second Collect() of the same plan lints again but dedups.
  bad.Collect();
  EXPECT_EQ(ctx.lint_report().size(), 1u);
}

TEST(LintCollectDeathTest, ErrorModeRejectsBadPlanBeforeRunning) {
  // Error level must hold in the forked death-test child too: at a
  // lower level the child would proceed past the lint gate and try to
  // run the job on thread-pool threads fork() did not duplicate.
  ScopedEnv env("RANKJOIN_LINT_LEVEL", "error");
  Context ctx(LintCluster(LintLevel::kError));
  auto bad = MultiConsumerPlan(&ctx, /*fixed=*/false);
  EXPECT_DEATH(bad.Collect(), "plan rejected by lint");
}

TEST(LintCollectTest, ErrorModeAllowsWarningSeverity) {
  ScopedEnv env("RANKJOIN_LINT_LEVEL", "error");
  Context ctx(LintCluster(LintLevel::kError));
  auto ds = Parallelize(&ctx, MakeKv(64), 4);
  // MS002 is warning severity: recorded, but the job still runs.
  auto grouped =
      GroupByKey(ds.Repartition(8, "fixture/place"), 16, "fixture/group");
  EXPECT_EQ(grouped.Collect().size(), 16u);
  ASSERT_EQ(ctx.lint_report().size(), 1u);
  EXPECT_EQ(ctx.lint_report()[0].code, "MS002");
}

TEST(LintCollectTest, OffModeNeverRecords) {
  ScopedEnv env("RANKJOIN_LINT_LEVEL", nullptr);
  Context ctx(LintCluster(LintLevel::kOff));
  auto bad = MultiConsumerPlan(&ctx, /*fixed=*/false);
  bad.Collect();
  EXPECT_TRUE(ctx.lint_report().empty());
  // Explicit Lint() still works at off level.
  EXPECT_EQ(Only(bad.Lint(), "MS001").size(), 1u);
}

TEST(LintFormatTest, FormatsCodeSeverityMessageLocation) {
  LintDiagnostic d;
  d.code = "MS001";
  d.severity = LintSeverity::kError;
  d.message = "pending chain feeds 2 consumers";
  d.location = "map (x)";
  const std::string line = FormatLintDiagnostics({d});
  EXPECT_NE(line.find("MS001 [error] "), std::string::npos);
  EXPECT_NE(line.find("pending chain feeds 2 consumers"),
            std::string::npos);
  EXPECT_NE(line.find("(at map (x))"), std::string::npos);
}

TEST(LintExplainTest, ExplainDotEmbedsDiagnosticsAndStaysValidDot) {
  ScopedEnv env("RANKJOIN_LINT_LEVEL", "warn");
  Context ctx(LintCluster(LintLevel::kWarn));
  auto bad = MultiConsumerPlan(&ctx, /*fixed=*/false);
  auto grouped =
      GroupByKey(bad.Repartition(8, "fixture/place"), 16, "fixture/group");
  const std::string dot = grouped.ExplainDot();
  EXPECT_EQ(dot.rfind("digraph plan {", 0), 0u);
  EXPECT_EQ(dot.substr(dot.size() - 2), "}\n");
  // Diagnostic codes are rendered into the offending nodes' labels and
  // the nodes are drawn in red.
  EXPECT_NE(dot.find("MS001"), std::string::npos);
  EXPECT_NE(dot.find("MS002"), std::string::npos);
  EXPECT_NE(dot.find("color=red, fontcolor=red"), std::string::npos);
  // Structurally valid DOT: balanced braces/brackets, even quote count.
  for (const auto& [open, close] : {std::pair{'{', '}'}, {'[', ']'}}) {
    EXPECT_EQ(std::count(dot.begin(), dot.end(), open),
              std::count(dot.begin(), dot.end(), close));
  }
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
  // Without lint findings the rendering is unchanged: no red nodes.
  Context clean_ctx(LintCluster(LintLevel::kWarn));
  const std::string clean_dot =
      MultiConsumerPlan(&clean_ctx, /*fixed=*/true).ExplainDot();
  EXPECT_EQ(clean_dot.find("color=red"), std::string::npos);
}

// Every production pipeline must be lint-clean in error mode: the whole
// join runs with Collect()-time linting armed to abort, and afterwards
// the report must not contain even warning-severity diagnostics.
class PipelineLintTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PipelineLintTest, LintCleanInErrorMode) {
  RankingDataset dataset = testutil::SmallSkewedDataset(/*seed=*/1,
                                                        /*n=*/200);
  Context ctx(LintCluster(LintLevel::kError));
  SimilarityJoinConfig config;
  config.algorithm = GetParam();
  config.theta = 0.3;
  config.delta = 500;
  auto result = RunSimilarityJoin(&ctx, dataset, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ctx.lint_report().empty())
      << FormatLintDiagnostics(ctx.lint_report());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PipelineLintTest,
    ::testing::Values(Algorithm::kBruteForce, Algorithm::kVJ,
                      Algorithm::kVJNL, Algorithm::kCL, Algorithm::kCLP,
                      Algorithm::kVSmart),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name = AlgorithmName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PipelineLintTest, RsJoinLintCleanInErrorMode) {
  RankingDataset r = testutil::SmallSkewedDataset(/*seed=*/1, /*n=*/150);
  RankingDataset s = testutil::SmallSkewedDataset(/*seed=*/2, /*n=*/150);
  Context ctx(LintCluster(LintLevel::kError));
  RsJoinOptions options;
  options.theta = 0.25;
  auto result = RunRsJoin(&ctx, r, s, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ctx.lint_report().empty())
      << FormatLintDiagnostics(ctx.lint_report());
}

}  // namespace
}  // namespace rankjoin::minispark
