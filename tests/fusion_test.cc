// Property tests for the lazy stage-fused execution engine: every join
// pipeline must produce bit-identical results with narrow-op fusion on
// (lazy default) and off (eager per-operator baseline), and fusion must
// actually reduce the number of stages and materialized elements.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/similarity_join.h"
#include "join/rs_join.h"
#include "minispark/dataset.h"
#include "minispark/metrics.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using minispark::Context;
using testutil::PairSet;
using testutil::SmallSkewedDataset;
using testutil::TestCluster;
using testutil::Truth;

Context::Options FusedCluster() { return TestCluster(); }

Context::Options UnfusedCluster() {
  Context::Options options = TestCluster();
  options.fuse_narrow_ops = false;
  return options;
}

SimilarityJoinConfig ConfigFor(Algorithm algorithm) {
  SimilarityJoinConfig config;
  config.algorithm = algorithm;
  config.theta = 0.25;
  config.theta_c = 0.05;
  if (algorithm == Algorithm::kCLP) config.delta = 8;
  return config;
}

/// Every algorithm of the paper's evaluation returns the same pair set
/// (each qualifying pair exactly once, smaller id first) whether narrow
/// chains are fused or the engine materializes after every operator.
TEST(FusionPropertyTest, FusedMatchesUnfusedForEveryAlgorithm) {
  const RankingDataset dataset = SmallSkewedDataset(/*seed=*/7, /*n=*/300);
  const std::set<ResultPair> truth = Truth(dataset, 0.25);
  const Algorithm algorithms[] = {Algorithm::kBruteForce, Algorithm::kVJ,
                                  Algorithm::kVJNL,       Algorithm::kCL,
                                  Algorithm::kCLP,        Algorithm::kVSmart};
  for (Algorithm algorithm : algorithms) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    Context fused_ctx(FusedCluster());
    Context unfused_ctx(UnfusedCluster());
    auto fused =
        RunSimilarityJoin(&fused_ctx, dataset, ConfigFor(algorithm));
    auto unfused =
        RunSimilarityJoin(&unfused_ctx, dataset, ConfigFor(algorithm));
    ASSERT_TRUE(fused.ok()) << fused.status().message();
    ASSERT_TRUE(unfused.ok()) << unfused.status().message();
    // Each exactly once: no duplicates hiding behind the set compare.
    EXPECT_EQ(fused->pairs.size(), PairSet(fused->pairs).size());
    EXPECT_EQ(PairSet(fused->pairs), PairSet(unfused->pairs));
    EXPECT_EQ(PairSet(fused->pairs), truth);
  }
}

/// Same property for the two-dataset R-S join.
TEST(FusionPropertyTest, RsJoinFusedMatchesUnfused) {
  const RankingDataset r = SmallSkewedDataset(/*seed=*/11, /*n=*/150);
  const RankingDataset s = SmallSkewedDataset(/*seed=*/13, /*n=*/150);
  RsJoinOptions options;
  options.theta = 0.25;
  const std::set<ResultPair> truth =
      PairSet(BruteForceRsJoin(r, s, options.theta).pairs);

  Context fused_ctx(FusedCluster());
  Context unfused_ctx(UnfusedCluster());
  auto fused = RunRsJoin(&fused_ctx, r, s, options);
  auto unfused = RunRsJoin(&unfused_ctx, r, s, options);
  ASSERT_TRUE(fused.ok()) << fused.status().message();
  ASSERT_TRUE(unfused.ok()) << unfused.status().message();
  EXPECT_EQ(PairSet(fused->pairs), PairSet(unfused->pairs));
  EXPECT_EQ(PairSet(fused->pairs), truth);
}

/// The fused and unfused runs also agree on the join statistics that are
/// independent of stage structure (candidates inspected, result pairs).
TEST(FusionPropertyTest, StatsAgreeAcrossModes) {
  const RankingDataset dataset = SmallSkewedDataset(/*seed=*/3, /*n=*/200);
  Context fused_ctx(FusedCluster());
  Context unfused_ctx(UnfusedCluster());
  const SimilarityJoinConfig config = ConfigFor(Algorithm::kVJ);
  auto fused = RunSimilarityJoin(&fused_ctx, dataset, config);
  auto unfused = RunSimilarityJoin(&unfused_ctx, dataset, config);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(unfused.ok());
  EXPECT_EQ(fused->stats.candidates, unfused->stats.candidates);
  EXPECT_EQ(fused->stats.verified, unfused->stats.verified);
  EXPECT_EQ(fused->stats.result_pairs, unfused->stats.result_pairs);
}

/// Fusion collapses the CL pipeline's narrow chains (prefix flatMaps,
/// key maps, dedup maps) into its shuffles: the fused run must execute
/// strictly fewer stages AND materialize strictly fewer elements.
TEST(FusionMetricsTest, ClPipelineRunsFewerStagesWhenFused) {
  const RankingDataset dataset = SmallSkewedDataset(/*seed=*/7, /*n=*/300);
  Context fused_ctx(FusedCluster());
  Context unfused_ctx(UnfusedCluster());
  const SimilarityJoinConfig config = ConfigFor(Algorithm::kCL);
  ASSERT_TRUE(RunSimilarityJoin(&fused_ctx, dataset, config).ok());
  ASSERT_TRUE(RunSimilarityJoin(&unfused_ctx, dataset, config).ok());
  EXPECT_LT(fused_ctx.metrics().NumStages(),
            unfused_ctx.metrics().NumStages());
  EXPECT_LT(fused_ctx.metrics().TotalMaterializedElements(),
            unfused_ctx.metrics().TotalMaterializedElements());
}

/// A narrow three-op chain executes as exactly one stage (plus the
/// source), and the stage advertises the fused logical ops.
TEST(FusionMetricsTest, NarrowChainFusesToSingleStage) {
  Context ctx(FusedCluster());
  std::vector<int> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i);
  auto chain =
      minispark::Parallelize(&ctx, data, 4)
          .Map([](const int& x) { return x + 1; }, "inc")
          .Filter([](const int& x) { return x % 2 == 0; }, "evens")
          .FlatMap([](const int& x) { return std::vector<int>{x, -x}; },
                   "mirror");
  const size_t before = ctx.metrics().NumStages();
  chain.Collect();
  EXPECT_EQ(ctx.metrics().NumStages(), before + 1);
  const minispark::StageMetrics& stage = ctx.metrics().stages().back();
  EXPECT_EQ(stage.fused_ops, "map+filter+flatMap");
  EXPECT_EQ(stage.materialized_elements, 256u);
}

/// Cache() materializes a chain exactly once: repeated actions on the
/// cached dataset add no further stages to the job metrics.
TEST(FusionMetricsTest, CacheMaterializesOnceViaJobMetrics) {
  Context ctx(FusedCluster());
  std::vector<int> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i);
  auto chain = minispark::Parallelize(&ctx, data, 4)
                   .Map([](const int& x) { return x * 3; }, "triple");
  chain.Cache();
  const size_t after_cache = ctx.metrics().NumStages();
  chain.Collect();
  chain.Count();
  chain.Collect();
  EXPECT_EQ(ctx.metrics().NumStages(), after_cache);
}

}  // namespace
}  // namespace rankjoin
