#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace rankjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingStep() { return Status::IoError("disk"); }

Status Propagates() {
  RANKJOIN_RETURN_NOT_OK(FailingStep());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

Result<int> MakeValue(bool ok) {
  if (ok) return 7;
  return Status::OutOfRange("no");
}

Status UsesAssignOrReturn(bool ok, int* out) {
  RANKJOIN_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  *out = v;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UsesAssignOrReturn(false, &out).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace rankjoin
