#include "ranking/footrule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "common/random.h"
#include "data/generator.h"
#include "ranking/reorder.h"

namespace rankjoin {
namespace {

OrderedRanking Ordered(const Ranking& r) {
  return MakeOrdered(r, ItemOrder());
}

TEST(FootruleTest, PaperTable2Example) {
  // F(tau_1, tau_2) = 16 (Section 1.1; identical with 0-based ranks and
  // artificial rank l = k = 5).
  Ranking t1(1, {2, 5, 4, 3, 1});
  Ranking t2(2, {1, 4, 5, 9, 0});
  EXPECT_EQ(FootruleDistance(t1, t2), 16u);
}

TEST(FootruleTest, IdenticalRankingsHaveZeroDistance) {
  Ranking a(0, {3, 1, 4, 1 + 4, 9});
  Ranking b(1, {3, 1, 4, 5, 9});
  EXPECT_EQ(FootruleDistance(a, a), 0u);
  EXPECT_EQ(FootruleDistance(a, b), 0u);
}

TEST(FootruleTest, DisjointRankingsHitMaximum) {
  Ranking a(0, {0, 1, 2});
  Ranking b(1, {10, 11, 12});
  EXPECT_EQ(FootruleDistance(a, b), MaxFootrule(3));
  EXPECT_EQ(MaxFootrule(3), 12u);  // k*(k+1)
}

TEST(FootruleTest, SymmetricDistance) {
  Ranking a(0, {1, 2, 3, 4});
  Ranking b(1, {2, 1, 5, 6});
  EXPECT_EQ(FootruleDistance(a, b), FootruleDistance(b, a));
}

TEST(FootruleTest, AdjacentSwapCostsTwo) {
  Ranking a(0, {1, 2, 3});
  Ranking b(1, {2, 1, 3});
  EXPECT_EQ(FootruleDistance(a, b), 2u);
}

TEST(FootruleTest, OrderedOverloadMatchesPlain) {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 60;
  options.domain_size = 40;
  options.seed = 99;
  RankingDataset ds = GenerateDataset(options);
  std::vector<OrderedRanking> ordered =
      MakeOrderedDataset(ds.rankings, ItemOrder());
  for (size_t i = 0; i < ds.rankings.size(); i += 3) {
    for (size_t j = i + 1; j < ds.rankings.size(); j += 5) {
      EXPECT_EQ(FootruleDistance(ds.rankings[i], ds.rankings[j]),
                FootruleDistance(ordered[i], ordered[j]));
    }
  }
}

TEST(FootruleTest, BoundedEarlyExit) {
  Ranking a(0, {0, 1, 2, 3, 4});
  Ranking b(1, {10, 11, 12, 13, 14});
  OrderedRanking oa = Ordered(a);
  OrderedRanking ob = Ordered(b);
  EXPECT_FALSE(FootruleDistanceBounded(oa, ob, 10).has_value());
  auto full = FootruleDistanceBounded(oa, ob, MaxFootrule(5));
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, MaxFootrule(5));
}

TEST(FootruleTest, BoundedExactlyAtBound) {
  Ranking a(0, {1, 2, 3});
  Ranking b(1, {2, 1, 3});
  auto d = FootruleDistanceBounded(Ordered(a), Ordered(b), 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);
  EXPECT_FALSE(FootruleDistanceBounded(Ordered(a), Ordered(b), 1).has_value());
}

TEST(FootruleTest, TriangleInequalityOnRandomTriples) {
  // The top-k Footrule with l = k is an L1 embedding, so the triangle
  // inequality must hold exactly — the CL algorithm depends on it.
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 90;
  options.domain_size = 30;  // small domain -> plenty of overlap
  options.seed = 123;
  RankingDataset ds = GenerateDataset(options);
  std::vector<OrderedRanking> ordered =
      MakeOrderedDataset(ds.rankings, ItemOrder());
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto& a = ordered[rng.Uniform(ordered.size())];
    const auto& b = ordered[rng.Uniform(ordered.size())];
    const auto& c = ordered[rng.Uniform(ordered.size())];
    EXPECT_LE(FootruleDistance(a, c),
              FootruleDistance(a, b) + FootruleDistance(b, c));
  }
}

TEST(FootruleTest, PositionFilterSoundOnRandomPairs) {
  // d >= 2 * max rank difference (missing -> rank k): verified here
  // empirically; the join algorithms prune with exactly this bound.
  GeneratorOptions options;
  options.k = 8;
  options.num_rankings = 80;
  options.domain_size = 25;
  options.seed = 321;
  RankingDataset ds = GenerateDataset(options);
  for (size_t i = 0; i < ds.rankings.size(); ++i) {
    for (size_t j = i + 1; j < ds.rankings.size(); ++j) {
      const Ranking& a = ds.rankings[i];
      const Ranking& b = ds.rankings[j];
      const uint32_t d = FootruleDistance(a, b);
      uint32_t max_diff = 0;
      for (int r = 0; r < a.k(); ++r) {
        int rb = b.RankOf(a.ItemAt(r));
        if (rb < 0) rb = a.k();
        max_diff = std::max(max_diff,
                            static_cast<uint32_t>(std::abs(r - rb)));
        int ra = a.RankOf(b.ItemAt(r));
        if (ra < 0) ra = a.k();
        max_diff = std::max(max_diff,
                            static_cast<uint32_t>(std::abs(ra - r)));
      }
      EXPECT_GE(d, 2 * max_diff) << a.ToString() << " vs " << b.ToString();
      // And the filter API agrees: pairs within theta pass the filter.
      EXPECT_TRUE(PositionFilterPasses(0, static_cast<int>(max_diff), d));
    }
  }
}

TEST(ThresholdTest, RawThresholdRounding) {
  // 0.3 * 110 must round to 33, not 32 (binary representation slop).
  EXPECT_EQ(RawThreshold(0.3, 10), 33u);
  EXPECT_EQ(RawThreshold(0.1, 10), 11u);
  EXPECT_EQ(RawThreshold(0.0, 10), 0u);
  EXPECT_EQ(RawThreshold(1.0, 10), 110u);
}

TEST(ThresholdTest, NormalizeRoundTrip) {
  EXPECT_DOUBLE_EQ(NormalizeDistance(55, 10), 0.5);
  EXPECT_DOUBLE_EQ(NormalizeDistance(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeDistance(MaxFootrule(25), 25), 1.0);
}

TEST(ThresholdTest, PositionFilterBoundary) {
  // raw_theta = 10: rank difference 5 passes (2*5 <= 10), 6 fails.
  EXPECT_TRUE(PositionFilterPasses(0, 5, 10));
  EXPECT_FALSE(PositionFilterPasses(0, 6, 10));
  EXPECT_TRUE(PositionFilterPasses(7, 7, 0));
}

}  // namespace
}  // namespace rankjoin
