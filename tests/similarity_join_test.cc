#include "core/similarity_join.h"

#include <gtest/gtest.h>

#include "core/config.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::PairSet;
using testutil::SmallSkewedDataset;
using testutil::TestCluster;
using testutil::Truth;

TEST(ParseAlgorithmTest, AcceptsKnownNames) {
  EXPECT_EQ(*ParseAlgorithm("vj"), Algorithm::kVJ);
  EXPECT_EQ(*ParseAlgorithm("VJ-NL"), Algorithm::kVJNL);
  EXPECT_EQ(*ParseAlgorithm("cl"), Algorithm::kCL);
  EXPECT_EQ(*ParseAlgorithm("CL-P"), Algorithm::kCLP);
  EXPECT_EQ(*ParseAlgorithm("brute-force"), Algorithm::kBruteForce);
  EXPECT_EQ(*ParseAlgorithm("bf"), Algorithm::kBruteForce);
}

TEST(ParseAlgorithmTest, RejectsUnknown) {
  auto r = ParseAlgorithm("quantum-join");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlgorithmNameTest, RoundTrips) {
  for (Algorithm a : {Algorithm::kBruteForce, Algorithm::kVJ,
                      Algorithm::kVJNL, Algorithm::kCL, Algorithm::kCLP,
                      Algorithm::kVSmart}) {
    EXPECT_EQ(*ParseAlgorithm(AlgorithmName(a)), a);
  }
}

TEST(ConfigValidateTest, CatchesBadValues) {
  SimilarityJoinConfig config;
  config.theta = 1.5;
  EXPECT_FALSE(config.Validate(10).ok());

  config = SimilarityJoinConfig{};
  config.algorithm = Algorithm::kCL;
  config.theta = 0.2;
  config.theta_c = 0.5;
  EXPECT_FALSE(config.Validate(10).ok());

  config = SimilarityJoinConfig{};
  config.algorithm = Algorithm::kCLP;
  config.delta = 0;
  EXPECT_FALSE(config.Validate(10).ok());

  config = SimilarityJoinConfig{};
  config.num_partitions = 0;
  EXPECT_FALSE(config.Validate(10).ok());

  config = SimilarityJoinConfig{};
  EXPECT_TRUE(config.Validate(10).ok());
}

TEST(SimilarityJoinTest, AllAlgorithmsAgree) {
  RankingDataset ds = SmallSkewedDataset(500);
  minispark::Context ctx(TestCluster());
  const double theta = 0.3;
  std::set<ResultPair> expected = Truth(ds, theta);
  for (Algorithm algorithm : {Algorithm::kVJ, Algorithm::kVJNL,
                              Algorithm::kCL, Algorithm::kCLP,
                              Algorithm::kVSmart}) {
    SimilarityJoinConfig config;
    config.algorithm = algorithm;
    config.theta = theta;
    config.delta = 50;  // used by CL-P only
    auto result = RunSimilarityJoin(&ctx, ds, config);
    ASSERT_TRUE(result.ok()) << AlgorithmName(algorithm) << ": "
                             << result.status();
    EXPECT_EQ(PairSet(result->pairs), expected) << AlgorithmName(algorithm);
  }
}

TEST(SimilarityJoinTest, BruteForceThroughFacade) {
  RankingDataset ds = SmallSkewedDataset(501, 100);
  minispark::Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kBruteForce;
  config.theta = 0.2;
  auto result = RunSimilarityJoin(&ctx, ds, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PairSet(result->pairs), Truth(ds, 0.2));
}

TEST(SimilarityJoinTest, InvalidConfigRejectedBeforeWork) {
  RankingDataset ds = SmallSkewedDataset(502, 10);
  minispark::Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.theta = -1.0;
  auto result = RunSimilarityJoin(&ctx, ds, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rankjoin
