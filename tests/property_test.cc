#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "core/similarity_join.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::PairSet;
using testutil::TestCluster;
using testutil::Truth;

/// Parameterized cross-validation: every distributed algorithm must
/// produce exactly the brute-force result, for every combination of
/// dataset shape, k, and theta. This is the repository's master
/// equivalence property (the paper's algorithms are exact, not
/// approximate).
using Params = std::tuple<Algorithm, double /*theta*/, int /*k*/,
                          uint64_t /*seed*/>;

class AlgorithmEquivalenceTest : public ::testing::TestWithParam<Params> {};

TEST_P(AlgorithmEquivalenceTest, MatchesBruteForce) {
  const auto [algorithm, theta, k, seed] = GetParam();
  GeneratorOptions generator;
  generator.k = k;
  generator.num_rankings = 250;
  generator.domain_size = k * 25;
  generator.zipf_skew = 0.9;
  generator.near_duplicate_rate = 0.25;
  generator.seed = seed;
  RankingDataset ds = GenerateDataset(generator);

  minispark::Context ctx(TestCluster());
  SimilarityJoinConfig config;
  config.algorithm = algorithm;
  config.theta = theta;
  config.theta_c = 0.03;
  config.delta = 40;
  auto result = RunSimilarityJoin(&ctx, ds, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(PairSet(result->pairs), Truth(ds, theta));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(Algorithm::kVJ, Algorithm::kVJNL, Algorithm::kCL,
                          Algorithm::kCLP, Algorithm::kVSmart),
        ::testing::Values(0.1, 0.25, 0.4),
        ::testing::Values(5, 10, 25),
        ::testing::Values(uint64_t{11}, uint64_t{12})),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = AlgorithmName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_theta" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100)) +
             "_k" + std::to_string(std::get<2>(info.param)) + "_seed" +
             std::to_string(std::get<3>(info.param));
    });

/// Threshold-monotonicity property: results for a smaller theta are a
/// subset of results for a larger theta, per algorithm.
class MonotonicityTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MonotonicityTest, ResultsGrowWithTheta) {
  const Algorithm algorithm = GetParam();
  RankingDataset ds = testutil::SmallSkewedDataset(600, 300);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> previous;
  for (double theta : {0.1, 0.2, 0.3, 0.4}) {
    SimilarityJoinConfig config;
    config.algorithm = algorithm;
    config.theta = theta;
    config.delta = 60;
    auto result = RunSimilarityJoin(&ctx, ds, config);
    ASSERT_TRUE(result.ok()) << result.status();
    std::set<ResultPair> current = PairSet(result->pairs);
    for (const ResultPair& p : previous) {
      EXPECT_TRUE(current.count(p))
          << "pair lost when growing theta to " << theta;
    }
    previous = std::move(current);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MonotonicityTest,
                         ::testing::Values(Algorithm::kVJ, Algorithm::kVJNL,
                                           Algorithm::kCL, Algorithm::kCLP),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           std::string name = AlgorithmName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

/// Worker-count invariance: the execution backend must not affect the
/// result set (only the timings).
class WorkerInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkerInvarianceTest, SameResultAnyClusterSize) {
  const int workers = GetParam();
  RankingDataset ds = testutil::SmallSkewedDataset(601, 200);
  minispark::Context ctx(TestCluster(workers, workers * 2));
  SimilarityJoinConfig config;
  config.algorithm = Algorithm::kCLP;
  config.theta = 0.3;
  config.delta = 30;
  auto result = RunSimilarityJoin(&ctx, ds, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PairSet(result->pairs), Truth(ds, 0.3));
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, WorkerInvarianceTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace rankjoin
