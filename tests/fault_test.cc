#include "minispark/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/similarity_join.h"
#include "jaccard/jaccard_join.h"
#include "minispark/context.h"
#include "minispark/dataset.h"
#include "minispark/extra_ops.h"
#include "minispark/shuffle.h"
#include "tests/test_util.h"

namespace rankjoin::minispark {
namespace {

using rankjoin::testutil::PairSet;
using rankjoin::testutil::SmallSkewedDataset;
using rankjoin::testutil::TestCluster;

/// Pins an environment variable for one test's scope, restoring the
/// prior state on destruction. Every test here that constructs a
/// Context pins RANKJOIN_FAULT_SPEC (and the spill budget): CI runs the
/// whole suite under chaos overrides, which would otherwise clobber the
/// Options the test set.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// Pins the fault-relevant environment for one test.
struct PinnedEnv {
  ScopedEnv fault{"RANKJOIN_FAULT_SPEC", nullptr};
  ScopedEnv budget{"RANKJOIN_SHUFFLE_BUDGET_BYTES", nullptr};
  ScopedEnv trace{"RANKJOIN_TRACE_LEVEL", nullptr};
  ScopedEnv lint{"RANKJOIN_LINT_LEVEL", nullptr};
};

// ---------------------------------------------------------------------
// Fault spec parsing
// ---------------------------------------------------------------------

TEST(FaultSpecTest, EmptyIsAllOff) {
  Result<FaultSpec> spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->Any());
  EXPECT_EQ(spec->seed, 42u);
}

TEST(FaultSpecTest, FullGrammar) {
  Result<FaultSpec> spec = ParseFaultSpec(
      "task_throw:p=0.05;spill_corrupt:p=0.1;task_delay:p=0.02,ms=200;"
      "seed=7");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->task_throw_p, 0.05);
  EXPECT_DOUBLE_EQ(spec->spill_corrupt_p, 0.1);
  EXPECT_DOUBLE_EQ(spec->task_delay_p, 0.02);
  EXPECT_EQ(spec->task_delay_ms, 200);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_TRUE(spec->Any());
}

TEST(FaultSpecTest, Errors) {
  EXPECT_FALSE(ParseFaultSpec("task_throw:p=1.5").ok());   // p out of range
  EXPECT_FALSE(ParseFaultSpec("task_throw:p=nope").ok());  // bad number
  EXPECT_FALSE(ParseFaultSpec("gremlins:p=0.5").ok());     // unknown fault
  EXPECT_FALSE(ParseFaultSpec("task_throw:q=0.5").ok());   // unknown key
  EXPECT_FALSE(ParseFaultSpec("seed=abc").ok());           // bad seed
}

// ---------------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.task_throw_p = 0.5;
  spec.spill_corrupt_p = 0.5;
  spec.seed = 123;
  FaultInjector a(spec, nullptr);
  FaultInjector b(spec, nullptr);
  int fired = 0;
  for (int task = 0; task < 50; ++task) {
    for (uint64_t attempt = 0; attempt < 4; ++attempt) {
      const bool fa = a.TaskThrow("stage", task, attempt);
      EXPECT_EQ(fa, b.TaskThrow("stage", task, attempt));
      fired += fa ? 1 : 0;
      EXPECT_EQ(a.SpillCorrupt(1, task, attempt, 3),
                b.SpillCorrupt(1, task, attempt, 3));
    }
  }
  // p=0.5 over 200 draws: far from degenerate on both sides.
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST(FaultInjectorTest, ScheduleDependsOnEveryCoordinate) {
  FaultSpec spec;
  spec.task_throw_p = 0.5;
  spec.seed = 123;
  FaultInjector a(spec, nullptr);
  FaultSpec other = spec;
  other.seed = 124;
  FaultInjector b(other, nullptr);
  int seed_diff = 0;
  int stage_diff = 0;
  int attempt_diff = 0;
  for (int task = 0; task < 100; ++task) {
    seed_diff += a.TaskThrow("s", task, 0) != b.TaskThrow("s", task, 0);
    stage_diff += a.TaskThrow("s", task, 0) != a.TaskThrow("t", task, 0);
    attempt_diff += a.TaskThrow("s", task, 0) != a.TaskThrow("s", task, 1);
  }
  EXPECT_GT(seed_diff, 0);
  EXPECT_GT(stage_diff, 0);
  EXPECT_GT(attempt_diff, 0);
}

TEST(FaultInjectorTest, ProbabilityEndpoints) {
  FaultSpec always;
  always.task_throw_p = 1.0;
  FaultInjector on(always, nullptr);
  FaultInjector off;  // default: disabled
  EXPECT_FALSE(off.enabled());
  for (int task = 0; task < 20; ++task) {
    EXPECT_TRUE(on.TaskThrow("s", task, 0));
    EXPECT_FALSE(off.TaskThrow("s", task, 0));
  }
}

TEST(Crc32Test, DetectsSingleByteFlip) {
  std::string payload = "the quick brown fox jumps over the lazy dog";
  const uint32_t crc = Crc32(payload.data(), payload.size());
  EXPECT_EQ(crc, Crc32(payload.data(), payload.size()));
  payload[payload.size() / 2] ^= 0x5A;
  EXPECT_NE(crc, Crc32(payload.data(), payload.size()));
}

// ---------------------------------------------------------------------
// Stage execution: empty stages, retries, failure surfacing
// ---------------------------------------------------------------------

TEST(RetryTest, EmptyAndNegativeStagesRunNoTasks) {
  PinnedEnv env;
  Context ctx(TestCluster());
  std::atomic<int> ran{0};
  StageMetrics zero = ctx.RunStage("empty", 0, [&](int) { ran.fetch_add(1); });
  StageMetrics neg = ctx.RunStage("neg", -3, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(zero.status.ok());
  EXPECT_TRUE(neg.status.ok());
  EXPECT_TRUE(zero.task_seconds.empty());
  EXPECT_TRUE(neg.task_seconds.empty());
  EXPECT_EQ(zero.task_retries, 0u);
}

TEST(RetryTest, TransientThrowRetriesUntilSuccess) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.trace_level = TraceLevel::kCounters;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  std::array<std::atomic<int>, 4> attempts{};
  StageMetrics stage = ctx.RunStage("flaky", 4, [&](int i) {
    if (attempts[static_cast<size_t>(i)].fetch_add(1) == 0) {
      throw std::runtime_error("transient glitch");
    }
  });
  EXPECT_TRUE(stage.status.ok());
  EXPECT_EQ(stage.task_retries, 4u);
  for (const auto& a : attempts) EXPECT_EQ(a.load(), 2);
  // Each re-run attempt leaves a "task-retry" span; the recoveries are
  // also tallied in the fault.* counter scope.
  const std::string json = ctx.tracer().ToChromeTraceJson({});
  EXPECT_NE(json.find("\"task-retry\""), std::string::npos);
  EXPECT_EQ(ctx.counters().Value("fault.task.retried"), 4u);
  EXPECT_EQ(ctx.counters().Value("fault.task.recovered"), 4u);
}

TEST(RetryTest, ExhaustedRetriesSurfaceFirstErrorWithoutAborting) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.max_task_retries = 2;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  std::atomic<int> calls{0};
  StageMetrics stage = ctx.RunStage("doomed", 3, [&](int) {
    calls.fetch_add(1);
    throw std::runtime_error("boom");
  });
  EXPECT_FALSE(stage.status.ok());
  EXPECT_EQ(stage.status.code(), StatusCode::kInternal);
  EXPECT_NE(stage.status.message().find("boom"), std::string::npos);
  // The first failing task ran 1 + max_task_retries times; once the
  // stage is cancelled, tasks that have not started yet are skipped, so
  // the total attempt count is bounded by tasks * (retries + 1).
  EXPECT_GE(calls.load(), 3);
  EXPECT_LE(calls.load(), 9);
}

TEST(RetryTest, NonRetryableErrorFailsImmediately) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.max_task_retries = 5;
  Context ctx(options);
  std::atomic<int> calls{0};
  StageMetrics stage = ctx.RunStage("fatal", 1, [&](int) {
    calls.fetch_add(1);
    throw NonRetryableError(Status::IoError("spill gone"));
  });
  EXPECT_FALSE(stage.status.ok());
  EXPECT_EQ(stage.status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls.load(), 1);  // no retry
  EXPECT_EQ(stage.task_retries, 0u);
}

TEST(RetryTest, ThrowingLambdaPoisonsDatasetAndPropagates) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.max_task_retries = 1;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  std::vector<int> data(100);
  for (int i = 0; i < 100; ++i) data[static_cast<size_t>(i)] = i;
  Dataset<int> ds = Parallelize(&ctx, data, 4).Map([](int x) {
    if (x == 37) throw std::runtime_error("poison pill");
    return x * 2;
  });
  Result<std::vector<int>> direct = ds.TryCollect();
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("poison pill"), std::string::npos);
  EXPECT_FALSE(ds.status().ok());
  // Downstream wide operations propagate the poison without running
  // stages or aborting.
  Dataset<std::pair<int, int>> keyed =
      ds.Map([](int x) { return std::make_pair(x % 5, x); });
  Result<std::vector<std::pair<int, int>>> shuffled =
      PartitionByKey(keyed, 4).TryCollect();
  ASSERT_FALSE(shuffled.ok());
  EXPECT_NE(shuffled.status().message().find("poison pill"),
            std::string::npos);
}

TEST(RetryTest, InjectedFaultsRecoverWithIdenticalResults) {
  PinnedEnv env;
  const std::vector<int> data = [] {
    std::vector<int> d;
    for (int i = 0; i < 500; ++i) d.push_back(i);
    return d;
  }();
  const auto run = [&data](const std::string& fault_spec,
                           uint64_t* retries, uint64_t* injected) {
    Context::Options options = TestCluster();
    options.trace_level = TraceLevel::kCounters;
    options.retry_backoff_ms = 0;
    options.fault_spec = fault_spec;
    Context ctx(options);
    auto pairs = Parallelize(&ctx, data, 8).Map([](int x) {
      return std::make_pair(x % 13, x);
    });
    std::vector<std::pair<int, int>> out =
        *ReduceByKey(pairs, [](int a, int b) { return a + b; }).TryCollect();
    std::sort(out.begin(), out.end());
    if (retries != nullptr) *retries = ctx.metrics().TotalTaskRetries();
    if (injected != nullptr) {
      *injected = ctx.counters().Value("fault.task_throw.injected");
    }
    return out;
  };
  const auto clean = run("", nullptr, nullptr);
  uint64_t retries = 0;
  uint64_t injected = 0;
  const auto faulty = run("task_throw:p=0.2;seed=9", &retries, &injected);
  EXPECT_EQ(clean, faulty);
  EXPECT_GT(injected, 0u);
  EXPECT_GT(retries, 0u);
}

TEST(RetryTest, InjectionExhaustionSurfacesInjectedFault) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.fault_spec = "task_throw:p=1";  // every attempt fails
  options.max_task_retries = 2;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  Result<std::vector<int>> result =
      Parallelize(&ctx, std::vector<int>{1, 2, 3}, 2).Map([](int x) {
        return x;
      }).TryCollect();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------
// Spill integrity and lineage recovery
// ---------------------------------------------------------------------

using IntPair = std::pair<int, int>;

std::shared_ptr<ShuffleService<IntPair>> WriteTestShuffle(Context* ctx,
                                                          int buckets) {
  std::vector<IntPair> data;
  for (int i = 0; i < 400; ++i) data.push_back({i % buckets, i});
  Dataset<IntPair> ds = Parallelize(ctx, std::move(data), 4);
  return internal::ShuffleWrite<IntPair>(
      ds, buckets, "t", [buckets](int /*task*/) {
        return [buckets](const IntPair& kv) { return kv.first % buckets; };
      });
}

std::multiset<IntPair> ReadAll(Context* ctx,
                               ShuffleService<IntPair>* service, int buckets,
                               Status* status) {
  auto parts = internal::ShuffleRead(ctx, service,
                                     PartitionRanges::Identity(buckets), "t",
                                     status);
  std::multiset<IntPair> out;
  for (const auto& p : *parts) out.insert(p.begin(), p.end());
  return out;
}

TEST(SpillRecoveryTest, DeletedSpillFilesRegenerateFromLineage) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 1;  // spill everything
  options.trace_level = TraceLevel::kCounters;
  Context ctx(options);
  const int buckets = 8;
  auto expected_service = WriteTestShuffle(&ctx, buckets);
  Status clean_status;
  const auto expected =
      ReadAll(&ctx, expected_service.get(), buckets, &clean_status);
  ASSERT_TRUE(clean_status.ok());
  ASSERT_EQ(expected.size(), 400u);

  auto service = WriteTestShuffle(&ctx, buckets);
  ASSERT_FALSE(service->spill_paths().empty());
  for (const std::string& path : service->spill_paths()) {
    std::filesystem::remove(path);
  }
  Status status;
  const auto recovered = ReadAll(&ctx, service.get(), buckets, &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(recovered, expected);
  EXPECT_GT(service->recovered_runs(), 0u);
  EXPECT_GT(ctx.counters().Value("fault.spill.recovered"), 0u);
}

TEST(SpillRecoveryTest, ExternallyCorruptedRunFailsCrcAndRegenerates) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 1;
  options.trace_level = TraceLevel::kCounters;
  Context ctx(options);
  const int buckets = 8;
  auto service = WriteTestShuffle(&ctx, buckets);
  std::vector<std::string> paths = service->spill_paths();
  ASSERT_FALSE(paths.empty());
  for (const std::string& path : paths) {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(0);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    file.seekp(0);
    file.write(&byte, 1);
  }
  Status status;
  const auto recovered = ReadAll(&ctx, service.get(), buckets, &status);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(recovered.size(), 400u);
  EXPECT_GT(service->recovered_runs(), 0u);
  const std::string json = ctx.tracer().ToChromeTraceJson({});
  EXPECT_NE(json.find("\"spill-recovery\""), std::string::npos);
}

TEST(SpillRecoveryTest, InjectedCorruptionKeepsPipelineByteIdentical) {
  PinnedEnv env;
  const auto run = [](const std::string& fault_spec, uint64_t* recovered) {
    Context::Options options = TestCluster();
    options.shuffle_memory_budget_bytes = 1;
    options.trace_level = TraceLevel::kCounters;
    options.fault_spec = fault_spec;
    Context ctx(options);
    std::vector<IntPair> data;
    for (int i = 0; i < 600; ++i) data.push_back({i % 23, i});
    auto grouped =
        GroupByKey(Parallelize(&ctx, std::move(data), 8), 8);
    std::vector<std::pair<int, std::vector<int>>> out =
        *grouped.TryCollect();
    std::sort(out.begin(), out.end());
    if (recovered != nullptr) {
      *recovered = ctx.metrics().TotalRecoveredSpillRuns();
    }
    return out;
  };
  const auto clean = run("", nullptr);
  uint64_t recovered = 0;
  const auto faulty = run("spill_corrupt:p=0.5;seed=3", &recovered);
  EXPECT_EQ(clean, faulty);
  EXPECT_GT(recovered, 0u);
}

TEST(SpillRecoveryTest, NoRecoveryRegisteredIsNonRetryable) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 1;
  Context ctx(options);
  ShuffleService<IntPair> service(&ctx, 1, 2);
  for (int i = 0; i < 50; ++i) service.Add(0, i % 2, {i, i});
  service.FinishWrite();
  for (const std::string& path : service.spill_paths()) {
    std::filesystem::remove(path);
  }
  EXPECT_THROW(service.ReadRange(0, 2, [](IntPair&&) {}),
               NonRetryableError);
}

TEST(SpillRecoveryTest, MidConsumptionReadFailureIsNotRetried) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.max_task_retries = 3;
  options.retry_backoff_ms = 0;
  options.trace_level = TraceLevel::kCounters;
  Context ctx(options);
  const int buckets = 4;
  auto service = WriteTestShuffle(&ctx, buckets);
  auto post_calls = std::make_shared<std::atomic<int>>(0);
  Status status;
  internal::ShuffleRead(
      &ctx, service.get(), PartitionRanges::Identity(buckets), "t", &status,
      [post_calls](int p, std::vector<IntPair>*) {
        // A post fn that fails only on its first call: a retry of the
        // consuming task would then "succeed" — silently re-emitting
        // moved-from residue — so the failure must be permanent.
        if (p == 0 && post_calls->fetch_add(1) == 0) {
          throw std::runtime_error("post failed once");
        }
      },
      "post");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not retryable"), std::string::npos);
  EXPECT_EQ(ctx.counters().Value("fault.task.retried"), 0u);
}

TEST(SpillRecoveryTest, RangeLargerThanReadBufferCapRoundTrips) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 1;  // spill everything
  Context ctx(options);
  ShuffleService<std::string> service(&ctx, 1, 4);
  // ~2 MiB of spilled payload — beyond the validation-pass buffering
  // cap, so the emit pass must re-read (and re-verify) the overflow
  // segments instead of holding the whole range in memory.
  const std::string chunk(4096, 'x');
  constexpr int kRecords = 512;
  for (int i = 0; i < kRecords; ++i) {
    service.Add(0, i % 4, chunk + std::to_string(i));
  }
  service.FinishWrite();
  ASSERT_GT(service.spilled_bytes(), uint64_t{1} << 20);
  std::vector<std::string> got;
  service.ReadRange(0, 4,
                    [&](std::string&& s) { got.push_back(std::move(s)); });
  ASSERT_EQ(got.size(), static_cast<size_t>(kRecords));
  std::multiset<std::string> expect;
  for (int i = 0; i < kRecords; ++i) expect.insert(chunk + std::to_string(i));
  EXPECT_EQ(std::multiset<std::string>(got.begin(), got.end()), expect);
}

TEST(SpillRecoveryTest, UnwritableSpillDirDegradesToResident) {
  PinnedEnv env;
  // Point spill_dir at a regular FILE: creating the context's spill
  // subdirectory under it must fail.
  const std::string blocker =
      ::testing::TempDir() + "/rankjoin_fault_spill_blocker";
  { std::ofstream touch(blocker); }
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 1;
  options.spill_dir = blocker;
  options.trace_level = TraceLevel::kCounters;
  Context ctx(options);
  std::vector<IntPair> data;
  for (int i = 0; i < 300; ++i) data.push_back({i % 7, i});
  std::vector<IntPair> out =
      *PartitionByKey(Parallelize(&ctx, std::move(data), 4), 4).TryCollect();
  EXPECT_EQ(out.size(), 300u);  // degraded, not failed
  EXPECT_TRUE(ctx.spill_degraded());
  EXPECT_GE(ctx.counters().Value("fault.spill.degraded"), 1u);
  std::filesystem::remove(blocker);
}

// ---------------------------------------------------------------------
// Speculative execution
// ---------------------------------------------------------------------

TEST(SpeculationTest, DuplicateLaunchesAndExactlyOneCommitWins) {
  PinnedEnv env;
  Context::Options options = TestCluster(4, 8);
  options.speculation_multiplier = 2.0;
  Context ctx(options);
  constexpr int kTasks = 8;
  auto commits = std::make_shared<std::array<std::atomic<int>, kTasks>>();
  auto straggles = std::make_shared<std::atomic<int>>(0);
  StageMetrics stage = ctx.RunStageIsolated(
      "speculate", kTasks, [commits, straggles](int i) {
        // Task 3's FIRST attempt straggles; its speculative duplicate
        // (and every other task) is fast.
        if (i == 3 && straggles->fetch_add(1) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
        return [commits, i]() {
          (*commits)[static_cast<size_t>(i)].fetch_add(1);
        };
      });
  EXPECT_TRUE(stage.status.ok());
  EXPECT_GE(stage.speculative_launches, 1u);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ((*commits)[static_cast<size_t>(i)].load(), 1)
        << "task " << i << " must commit exactly once";
  }
}

TEST(SpeculationTest, OffByDefault) {
  PinnedEnv env;
  Context ctx(TestCluster(4, 8));
  auto slow = std::make_shared<std::atomic<int>>(0);
  StageMetrics stage =
      ctx.RunStageIsolated("no-speculation", 8, [slow](int i) {
        if (i == 0 && slow->fetch_add(1) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        return []() {};
      });
  EXPECT_TRUE(stage.status.ok());
  EXPECT_EQ(stage.speculative_launches, 0u);
}

TEST(SpeculationTest, InjectedDelayTriggersSpeculation) {
  PinnedEnv env;
  Context::Options options = TestCluster(4, 8);
  options.speculation_multiplier = 2.0;
  options.fault_spec = "task_delay:p=1,ms=150";
  Context ctx(options);
  // Every attempt sleeps an injected 150 ms before its body, so the
  // second wave of primaries visibly straggles while the first wave's
  // fast medians are already in. The straggler scan must see delayed
  // tasks as started (first_start_us is stamped BEFORE the injected
  // delay), or task_delay could never feed speculative execution.
  StageMetrics stage =
      ctx.RunStageIsolated("delayed", 8, [](int) { return []() {}; });
  EXPECT_TRUE(stage.status.ok());
  EXPECT_GE(stage.speculative_launches, 1u);
}

TEST(SpeculationTest, StragglingLoserNeverCommitsAfterStageFailure) {
  PinnedEnv env;
  Context::Options options = TestCluster(4, 8);
  options.speculation_multiplier = 2.0;
  auto commits = std::make_shared<std::atomic<int>>(0);
  auto invocations = std::make_shared<std::atomic<int>>(0);
  Status status;
  {
    Context ctx(options);
    StageMetrics stage = ctx.RunStageIsolated(
        "fail-primary", 8,
        [commits, invocations](int i) -> std::function<void()> {
          if (i != 3) return []() {};
          if (invocations->fetch_add(1) == 0) {
            // Primary: straggle long enough for the duplicate to
            // launch, then fail permanently.
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
            throw NonRetryableError(Status::Internal("primary died"));
          }
          // Speculative duplicate: outlive the stage barrier, then try
          // to commit.
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
          return [commits]() { commits->fetch_add(1); };
        });
    status = stage.status;
    // ~Context drains the still-straggling duplicate before `commits`
    // is inspected.
  }
  EXPECT_FALSE(status.ok());
  // The failed primary claimed the slot, so the duplicate's late commit
  // must have been dropped — running it here would race the driver,
  // which returned from the stage barrier long before.
  EXPECT_EQ(commits->load(), 0);
}

// ---------------------------------------------------------------------
// Chaos suite: every pipeline, byte-identical under injection
// ---------------------------------------------------------------------

/// Low-probability throws plus frequent spill corruption, with a 1-byte
/// budget so every shuffle takes the disk path. p(task_throw)^5 makes
/// retry exhaustion essentially impossible, and the fixed seed makes the
/// whole schedule reproducible.
constexpr char kChaosSpec[] = "task_throw:p=0.03;spill_corrupt:p=0.3;seed=11";

Context::Options ChaosCluster(const std::string& fault_spec) {
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 1;
  options.trace_level = TraceLevel::kCounters;
  options.retry_backoff_ms = 0;
  options.fault_spec = fault_spec;
  return options;
}

void ExpectChaosActivity(const Context& ctx, const std::string& label) {
  const uint64_t injected =
      ctx.counters().Value("fault.task_throw.injected") +
      ctx.counters().Value("fault.spill_corrupt.injected");
  const uint64_t recovered = ctx.counters().Value("fault.task.recovered") +
                             ctx.counters().Value("fault.spill.recovered");
  EXPECT_GE(injected, 1u) << label << ": no fault was injected";
  EXPECT_GE(recovered, 1u) << label << ": no fault was recovered";
}

TEST(ChaosTest, RankingPipelinesAreByteIdenticalUnderInjection) {
  PinnedEnv env;
  const RankingDataset dataset = SmallSkewedDataset(/*seed=*/5, /*n=*/220,
                                                    /*k=*/8);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kVJ, Algorithm::kVJNL, Algorithm::kCL, Algorithm::kCLP,
      Algorithm::kVSmart};
  for (Algorithm algorithm : algorithms) {
    SimilarityJoinConfig config;
    config.algorithm = algorithm;
    config.theta = 0.3;
    config.delta = 50;  // exercise the CL-P repartitioning path
    Context clean_ctx(ChaosCluster(""));
    Result<JoinResult> clean = RunSimilarityJoin(&clean_ctx, dataset, config);
    ASSERT_TRUE(clean.ok()) << clean.status();
    Context chaos_ctx(ChaosCluster(kChaosSpec));
    Result<JoinResult> chaos = RunSimilarityJoin(&chaos_ctx, dataset, config);
    ASSERT_TRUE(chaos.ok()) << chaos.status();
    EXPECT_EQ(PairSet(clean->pairs), PairSet(chaos->pairs))
        << "algorithm " << static_cast<int>(algorithm);
    ExpectChaosActivity(chaos_ctx,
                        "algorithm " + std::to_string(
                                           static_cast<int>(algorithm)));
  }
}

TEST(ChaosTest, JaccardPipelinesAreByteIdenticalUnderInjection) {
  PinnedEnv env;
  const RankingDataset dataset = SmallSkewedDataset(/*seed=*/6, /*n=*/220,
                                                    /*k=*/8);
  JaccardJoinOptions options;
  options.theta = 0.35;
  using Runner = Result<JoinResult> (*)(Context*, const RankingDataset&,
                                        const JaccardJoinOptions&);
  const std::vector<std::pair<const char*, Runner>> pipelines = {
      {"jaccard-vj", &RunJaccardVjJoin},
      {"jaccard-cl", &RunJaccardClusterJoin}};
  for (const auto& [label, runner] : pipelines) {
    Context clean_ctx(ChaosCluster(""));
    Result<JoinResult> clean = runner(&clean_ctx, dataset, options);
    ASSERT_TRUE(clean.ok()) << clean.status();
    Context chaos_ctx(ChaosCluster(kChaosSpec));
    Result<JoinResult> chaos = runner(&chaos_ctx, dataset, options);
    ASSERT_TRUE(chaos.ok()) << chaos.status();
    EXPECT_EQ(PairSet(clean->pairs), PairSet(chaos->pairs)) << label;
    ExpectChaosActivity(chaos_ctx, label);
  }
}

TEST(ChaosTest, SortByKeyStaysSortedUnderInjection) {
  PinnedEnv env;
  const auto run = [](const std::string& fault_spec) {
    Context ctx(ChaosCluster(fault_spec));
    std::vector<IntPair> data;
    for (int i = 0; i < 500; ++i) data.push_back({(i * 37) % 101, i});
    return *SortByKey(Parallelize(&ctx, std::move(data), 8), 8).TryCollect();
  };
  const auto clean = run("");
  const auto chaos = run(kChaosSpec);
  EXPECT_EQ(clean, chaos);
  EXPECT_TRUE(std::is_sorted(
      clean.begin(), clean.end(),
      [](const IntPair& a, const IntPair& b) { return a.first < b.first; }));
}

}  // namespace
}  // namespace rankjoin::minispark
