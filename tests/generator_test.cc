#include "data/generator.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"
#include "ranking/footrule.h"
#include "ranking/reorder.h"

namespace rankjoin {
namespace {

TEST(GeneratorTest, ProducesRequestedShape) {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 500;
  options.domain_size = 300;
  RankingDataset ds = GenerateDataset(options);
  EXPECT_EQ(ds.k, 10);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(GeneratorTest, IdsAreDenseAndOrdered) {
  GeneratorOptions options;
  options.num_rankings = 100;
  RankingDataset ds = GenerateDataset(options);
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.rankings[i].id(), static_cast<RankingId>(i));
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.num_rankings = 200;
  options.seed = 77;
  RankingDataset a = GenerateDataset(options);
  RankingDataset b = GenerateDataset(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rankings[i], b.rankings[i]);
  }
}

TEST(GeneratorTest, SeedChangesData) {
  GeneratorOptions options;
  options.num_rankings = 50;
  options.seed = 1;
  RankingDataset a = GenerateDataset(options);
  options.seed = 2;
  RankingDataset b = GenerateDataset(options);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    differing += !(a.rankings[i] == b.rankings[i]);
  }
  EXPECT_GT(differing, 40);
}

TEST(GeneratorTest, ItemsWithinDomain) {
  GeneratorOptions options;
  options.num_rankings = 300;
  options.domain_size = 64;
  options.k = 8;
  RankingDataset ds = GenerateDataset(options);
  for (const Ranking& r : ds.rankings) {
    for (ItemId item : r.items()) EXPECT_LT(item, 64u);
  }
}

TEST(GeneratorTest, SkewMakesLowIdsFrequent) {
  GeneratorOptions options;
  options.num_rankings = 2000;
  options.domain_size = 500;
  options.zipf_skew = 1.0;
  options.near_duplicate_rate = 0.0;
  RankingDataset ds = GenerateDataset(options);
  auto freq = CountItemFrequencies(ds.rankings);
  // Item 0 (Zipf rank 1) should appear far more often than item 400.
  EXPECT_GT(freq[0], 20 * std::max(freq[400], 1u));
}

TEST(GeneratorTest, NearDuplicatesCreateClosePairs) {
  GeneratorOptions base;
  base.num_rankings = 400;
  base.domain_size = 5000;  // large domain: random pairs are far apart
  base.near_duplicate_rate = 0.0;
  base.seed = 5;
  RankingDataset without = GenerateDataset(base);

  GeneratorOptions with_dups = base;
  with_dups.near_duplicate_rate = 0.4;
  RankingDataset with = GenerateDataset(with_dups);

  auto count_close = [](const RankingDataset& ds) {
    int close = 0;
    const uint32_t bound = RawThreshold(0.1, ds.k);
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = i + 1; j < ds.size(); ++j) {
        close += FootruleDistance(ds.rankings[i], ds.rankings[j]) <= bound;
      }
    }
    return close;
  };
  EXPECT_GT(count_close(with), count_close(without));
}

TEST(PerturbRankingTest, StaysValidAndClose) {
  Rng rng(11);
  Ranking base(0, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (int trial = 0; trial < 50; ++trial) {
    Ranking p = PerturbRanking(base, 99, 1000, 1, rng);
    EXPECT_EQ(p.id(), 99u);
    EXPECT_EQ(p.k(), base.k());
    EXPECT_TRUE(p.IsValid());
    // One op changes the distance by at most 2*k (an item replacement
    // displaces at most every rank by... bounded by the max distance of
    // a single-item change).
    EXPECT_LE(FootruleDistance(base, p), 2u * 10u);
  }
}

TEST(PerturbRankingTest, ZeroOpsIsIdentity) {
  Rng rng(12);
  Ranking base(0, {4, 5, 6});
  Ranking p = PerturbRanking(base, 1, 100, 0, rng);
  EXPECT_EQ(p.items(), base.items());
}

TEST(PresetOptionsTest, ShapesMatchDocumentation) {
  EXPECT_EQ(DblpLikeOptions().k, 10);
  EXPECT_EQ(OrkuLikeOptions().k, 10);
  EXPECT_EQ(OrkuLikeK25Options().k, 25);
  EXPECT_GT(OrkuLikeOptions().num_rankings, DblpLikeOptions().num_rankings);
}

}  // namespace
}  // namespace rankjoin
