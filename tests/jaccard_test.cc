#include "jaccard/jaccard_join.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "jaccard/jaccard.h"
#include "ranking/reorder.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::PairSet;
using testutil::SmallSkewedDataset;
using testutil::TestCluster;

OrderedRanking AsSet(RankingId id, std::vector<ItemId> items) {
  return MakeOrdered(Ranking(id, std::move(items)), ItemOrder());
}

TEST(JaccardMathTest, OverlapByMerge) {
  OrderedRanking a = AsSet(0, {1, 5, 9, 3});
  OrderedRanking b = AsSet(1, {9, 2, 3, 7});
  EXPECT_EQ(SetOverlap(a, b), 2);
  EXPECT_EQ(SetOverlap(a, a), 4);
  OrderedRanking c = AsSet(2, {100, 200, 300, 400});
  EXPECT_EQ(SetOverlap(a, c), 0);
}

TEST(JaccardMathTest, DistanceFromOverlap) {
  // k = 4: identical -> 0; disjoint -> 1; overlap 2 -> 1 - 2/6 = 2/3.
  EXPECT_DOUBLE_EQ(JaccardDistanceFromOverlap(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistanceFromOverlap(0, 4), 1.0);
  EXPECT_NEAR(JaccardDistanceFromOverlap(2, 4), 2.0 / 3.0, 1e-12);
}

TEST(JaccardMathTest, DistanceIgnoresOrder) {
  OrderedRanking a = AsSet(0, {1, 2, 3, 4});
  OrderedRanking b = AsSet(1, {4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 0.0);
}

TEST(JaccardMathTest, TriangleInequality) {
  GeneratorOptions options;
  options.k = 10;
  options.num_rankings = 80;
  options.domain_size = 30;
  options.seed = 404;
  RankingDataset ds = GenerateDataset(options);
  auto ordered = MakeOrderedDataset(ds.rankings, ItemOrder());
  for (size_t a = 0; a < 40; ++a) {
    for (size_t b = 0; b < 40; ++b) {
      for (size_t c = 0; c < 40; c += 7) {
        EXPECT_LE(JaccardDistance(ordered[a], ordered[c]),
                  JaccardDistance(ordered[a], ordered[b]) +
                      JaccardDistance(ordered[b], ordered[c]) + 1e-12);
      }
    }
  }
}

TEST(JaccardMathTest, MinOverlapMatchesClosedForm) {
  // o_min = ceil(2k(1-theta) / (2-theta)).
  for (int k : {5, 10, 25}) {
    for (double theta : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
      const int o = JaccardMinOverlap(theta, k);
      const double closed = 2.0 * k * (1.0 - theta) / (2.0 - theta);
      EXPECT_EQ(o, static_cast<int>(std::ceil(closed - 1e-9)))
          << "k=" << k << " theta=" << theta;
      // Defining property: o qualifies, o-1 does not.
      EXPECT_TRUE(JaccardQualifies(o, k, theta));
      if (o > 0) {
        EXPECT_FALSE(JaccardQualifies(o - 1, k, theta));
      }
    }
  }
}

TEST(JaccardMathTest, PrefixBounds) {
  EXPECT_EQ(JaccardPrefix(0.0, 10), 1);  // identical sets only
  EXPECT_GE(JaccardPrefix(0.9, 10), JaccardPrefix(0.1, 10));
  EXPECT_LE(JaccardPrefix(0.99, 10), 10);
}

TEST(JaccardBruteForceTest, SmallHandCase) {
  RankingDataset ds;
  ds.k = 4;
  ds.rankings = {
      Ranking(0, {1, 2, 3, 4}),
      Ranking(1, {4, 3, 2, 1}),   // same set -> distance 0
      Ranking(2, {1, 2, 3, 9}),   // overlap 3 -> 1 - 3/5 = 0.4
      Ranking(3, {7, 8, 10, 11}),  // disjoint from 0
  };
  JoinResult result = JaccardBruteForceJoin(ds, 0.4);
  std::set<ResultPair> pairs(result.pairs.begin(), result.pairs.end());
  EXPECT_EQ(pairs.size(), 3u);  // (0,1), (0,2), (1,2)
  EXPECT_TRUE(pairs.count({0, 1}));
  EXPECT_TRUE(pairs.count({0, 2}));
  EXPECT_TRUE(pairs.count({1, 2}));
}

std::set<ResultPair> JaccardTruth(const RankingDataset& ds, double theta) {
  return PairSet(JaccardBruteForceJoin(ds, theta).pairs);
}

TEST(JaccardVjJoinTest, MatchesBruteForceAcrossThetas) {
  RankingDataset ds = SmallSkewedDataset(700);
  minispark::Context ctx(TestCluster());
  for (double theta : {0.2, 0.4, 0.6, 0.8}) {
    JaccardJoinOptions options;
    options.theta = theta;
    auto result = RunJaccardVjJoin(&ctx, ds, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(PairSet(result->pairs), JaccardTruth(ds, theta))
        << "theta " << theta;
  }
}

TEST(JaccardVjJoinTest, WithoutReorderingStillCorrect) {
  RankingDataset ds = SmallSkewedDataset(701);
  minispark::Context ctx(TestCluster());
  JaccardJoinOptions options;
  options.theta = 0.5;
  options.reorder_by_frequency = false;
  auto result = RunJaccardVjJoin(&ctx, ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PairSet(result->pairs), JaccardTruth(ds, 0.5));
}

TEST(JaccardClusterJoinTest, MatchesBruteForceAcrossThetas) {
  RankingDataset ds = SmallSkewedDataset(702);
  minispark::Context ctx(TestCluster());
  for (double theta : {0.2, 0.4, 0.6}) {
    JaccardJoinOptions options;
    options.theta = theta;
    options.theta_c = 0.1;
    auto result = RunJaccardClusterJoin(&ctx, ds, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(PairSet(result->pairs), JaccardTruth(ds, theta))
        << "theta " << theta;
  }
}

TEST(JaccardClusterJoinTest, ThetaCVariants) {
  RankingDataset ds = SmallSkewedDataset(703);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = JaccardTruth(ds, 0.4);
  for (double theta_c : {0.0, 0.05, 0.2}) {
    JaccardJoinOptions options;
    options.theta = 0.4;
    options.theta_c = theta_c;
    auto result = RunJaccardClusterJoin(&ctx, ds, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(PairSet(result->pairs), expected) << "theta_c " << theta_c;
  }
}

TEST(JaccardClusterJoinTest, SingletonOptimizationToggle) {
  RankingDataset ds = SmallSkewedDataset(704);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = JaccardTruth(ds, 0.5);
  for (bool opt : {true, false}) {
    JaccardJoinOptions options;
    options.theta = 0.5;
    options.theta_c = 0.1;
    options.singleton_optimization = opt;
    auto result = RunJaccardClusterJoin(&ctx, ds, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(PairSet(result->pairs), expected) << opt;
  }
}

TEST(JaccardClusterJoinTest, TriangleShortcutToggle) {
  RankingDataset ds = SmallSkewedDataset(705);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = JaccardTruth(ds, 0.4);
  for (bool shortcut : {true, false}) {
    JaccardJoinOptions options;
    options.theta = 0.4;
    options.theta_c = 0.1;
    options.triangle_upper_shortcut = shortcut;
    auto result = RunJaccardClusterJoin(&ctx, ds, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(PairSet(result->pairs), expected) << shortcut;
  }
}

TEST(JaccardJoinTest, RejectsBadParameters) {
  RankingDataset ds = SmallSkewedDataset(706, 20);
  minispark::Context ctx(TestCluster());
  JaccardJoinOptions options;
  options.theta = 1.0;
  EXPECT_FALSE(RunJaccardVjJoin(&ctx, ds, options).ok());
  options.theta = 0.5;
  options.theta_c = 0.6;  // theta_c > theta
  EXPECT_FALSE(RunJaccardClusterJoin(&ctx, ds, options).ok());
  options.theta = 0.8;
  options.theta_c = 0.2;  // theta + 2*theta_c > 1
  EXPECT_FALSE(RunJaccardClusterJoin(&ctx, ds, options).ok());
}

TEST(JaccardJoinTest, PartitionInvariance) {
  RankingDataset ds = SmallSkewedDataset(707, 200);
  minispark::Context ctx(TestCluster());
  std::set<ResultPair> expected = JaccardTruth(ds, 0.4);
  for (int partitions : {1, 4, 32}) {
    JaccardJoinOptions options;
    options.theta = 0.4;
    options.theta_c = 0.1;
    options.num_partitions = partitions;
    auto vj = RunJaccardVjJoin(&ctx, ds, options);
    auto cl = RunJaccardClusterJoin(&ctx, ds, options);
    ASSERT_TRUE(vj.ok());
    ASSERT_TRUE(cl.ok());
    EXPECT_EQ(PairSet(vj->pairs), expected);
    EXPECT_EQ(PairSet(cl->pairs), expected);
  }
}

}  // namespace
}  // namespace rankjoin
