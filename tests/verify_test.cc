#include "join/verify.h"

#include <gtest/gtest.h>

#include "ranking/footrule.h"
#include "ranking/reorder.h"

namespace rankjoin {
namespace {

std::vector<OrderedRanking> MakeOrderedSet() {
  std::vector<Ranking> rankings = {
      Ranking(3, {1, 2, 3}),
      Ranking(7, {2, 1, 3}),
      Ranking(12, {4, 5, 6}),
  };
  return MakeOrderedDataset(rankings, ItemOrder());
}

TEST(RankingTableTest, ResolvesSparseIds) {
  auto ordered = MakeOrderedSet();
  RankingTable table(ordered);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Get(3).id, 3u);
  EXPECT_EQ(table.Get(7).id, 7u);
  EXPECT_EQ(table.Get(12).id, 12u);
}

TEST(RankingTableTest, EmptyBacking) {
  std::vector<OrderedRanking> empty;
  RankingTable table(empty);
  EXPECT_EQ(table.size(), 0u);
}

TEST(VerifyPairTest, CountsAndBounds) {
  auto ordered = MakeOrderedSet();
  JoinStats stats;
  // d(3, 7) = 2 (adjacent swap).
  auto d = VerifyPair(ordered[0], ordered[1], 2, &stats);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);
  EXPECT_EQ(stats.verified, 1u);

  auto miss = VerifyPair(ordered[0], ordered[1], 1, &stats);
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(stats.verified, 2u);
}

TEST(VerifyPairTest, DisjointPairAgainstMaxBound) {
  auto ordered = MakeOrderedSet();
  JoinStats stats;
  auto d = VerifyPair(ordered[0], ordered[2], MaxFootrule(3), &stats);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, MaxFootrule(3));
}

}  // namespace
}  // namespace rankjoin
