#include "join/cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "ranking/footrule.h"
#include "ranking/prefix.h"
#include "ranking/reorder.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::SmallSkewedDataset;
using testutil::TestCluster;

struct ClusterFixture {
  RankingDataset dataset;
  std::vector<OrderedRanking> ordered;
  std::vector<const OrderedRanking*> all;

  explicit ClusterFixture(uint64_t seed, size_t n = 300) {
    dataset = SmallSkewedDataset(seed, n);
    ItemOrder order =
        ItemOrder::FromFrequencies(CountItemFrequencies(dataset.rankings));
    ordered = MakeOrderedDataset(dataset.rankings, order);
    for (const OrderedRanking& r : ordered) all.push_back(&r);
  }

  internal::SelfJoinSpec Spec(double theta_c) const {
    internal::SelfJoinSpec spec;
    spec.raw_theta = RawThreshold(theta_c, dataset.k);
    spec.k = dataset.k;
    spec.num_partitions = 8;
    return spec;
  }
};

TEST(ClusteringPhaseTest, PairsAreWithinThetaC) {
  ClusterFixture fx(200);
  minispark::Context ctx(TestCluster());
  JoinStats stats;
  const double theta_c = 0.05;
  Clustering clustering =
      RunClusteringPhase(&ctx, fx.all, fx.Spec(theta_c), &stats);
  const uint32_t raw = RawThreshold(theta_c, fx.dataset.k);
  for (const ClusterPair& cp : clustering.pairs) {
    EXPECT_LT(cp.centroid, cp.member);  // smaller id is the centroid
    EXPECT_LE(cp.distance, raw);
    EXPECT_EQ(FootruleDistance(fx.ordered[cp.centroid],
                               fx.ordered[cp.member]),
              cp.distance);
  }
}

TEST(ClusteringPhaseTest, MatchesBruteForcePairs) {
  ClusterFixture fx(201);
  minispark::Context ctx(TestCluster());
  JoinStats stats;
  const double theta_c = 0.05;
  Clustering clustering =
      RunClusteringPhase(&ctx, fx.all, fx.Spec(theta_c), &stats);
  std::set<ResultPair> found;
  for (const ClusterPair& cp : clustering.pairs) {
    found.insert(MakeResultPair(cp.centroid, cp.member));
  }
  EXPECT_EQ(found, testutil::Truth(fx.dataset, theta_c));
}

TEST(ClusteringPhaseTest, SingletonsHaveNoClosePartner) {
  ClusterFixture fx(202);
  minispark::Context ctx(TestCluster());
  JoinStats stats;
  const double theta_c = 0.04;
  Clustering clustering =
      RunClusteringPhase(&ctx, fx.all, fx.Spec(theta_c), &stats);
  const uint32_t raw = RawThreshold(theta_c, fx.dataset.k);
  std::unordered_set<RankingId> singleton_set(
      clustering.singletons.begin(), clustering.singletons.end());
  for (RankingId id : clustering.singletons) {
    for (const OrderedRanking& other : fx.ordered) {
      if (other.id == id) continue;
      EXPECT_GT(FootruleDistance(fx.ordered[id], other), raw);
    }
  }
  // Partition property: every ranking is a centroid, a member of some
  // pair, or a singleton.
  std::unordered_set<RankingId> covered = singleton_set;
  for (const ClusterPair& cp : clustering.pairs) {
    covered.insert(cp.centroid);
    covered.insert(cp.member);
  }
  EXPECT_EQ(covered.size(), fx.dataset.size());
  EXPECT_EQ(stats.singletons, clustering.singletons.size());
  EXPECT_EQ(stats.clusters, clustering.centroids.size());
}

TEST(ClusteringPhaseTest, CentroidsAreFirstElements) {
  ClusterFixture fx(203);
  minispark::Context ctx(TestCluster());
  JoinStats stats;
  Clustering clustering =
      RunClusteringPhase(&ctx, fx.all, fx.Spec(0.05), &stats);
  std::unordered_set<RankingId> centroid_set(
      clustering.centroids.begin(), clustering.centroids.end());
  for (const ClusterPair& cp : clustering.pairs) {
    EXPECT_TRUE(centroid_set.count(cp.centroid));
  }
}

// --- Centroid join (Algorithm 1 / Lemma 5.3) ---

struct CentroidJoinFixture : ClusterFixture {
  minispark::Context ctx{TestCluster()};
  JoinStats stats;
  Clustering clustering;
  double theta_c;

  CentroidJoinFixture(uint64_t seed, double tc) : ClusterFixture(seed),
                                                  theta_c(tc) {
    clustering = RunClusteringPhase(&ctx, all, Spec(theta_c), &stats);
  }

  CentroidJoinSpec JoinSpec(double theta, bool singleton_opt = true) {
    CentroidJoinSpec spec;
    spec.raw_theta = RawThreshold(theta, dataset.k);
    spec.raw_theta_c = RawThreshold(theta_c, dataset.k);
    spec.k = dataset.k;
    spec.num_partitions = 8;
    spec.singleton_optimization = singleton_opt;
    return spec;
  }
};

TEST(CentroidJoinTest, RespectsPerTypeThresholds) {
  CentroidJoinFixture fx(204, 0.03);
  RankingTable table(fx.ordered);
  CentroidJoinSpec spec = fx.JoinSpec(0.2);
  auto pairs = RunCentroidJoin(&fx.ctx, table, fx.clustering.centroids,
                               fx.clustering.singletons, spec, &fx.stats);
  for (const CentroidPair& cp : pairs) {
    uint32_t bound;
    if (cp.ci_singleton && cp.cj_singleton) {
      bound = spec.raw_theta;
    } else if (cp.ci_singleton || cp.cj_singleton) {
      bound = spec.raw_theta + spec.raw_theta_c;
    } else {
      bound = spec.raw_theta + 2 * spec.raw_theta_c;
    }
    EXPECT_LE(cp.distance, bound);
    EXPECT_EQ(FootruleDistance(table.Get(cp.ci), table.Get(cp.cj)),
              cp.distance);
  }
}

TEST(CentroidJoinTest, FindsAllQualifyingCentroidPairs) {
  CentroidJoinFixture fx(205, 0.03);
  RankingTable table(fx.ordered);
  CentroidJoinSpec spec = fx.JoinSpec(0.2);
  auto pairs = RunCentroidJoin(&fx.ctx, table, fx.clustering.centroids,
                               fx.clustering.singletons, spec, &fx.stats);
  std::set<ResultPair> found;
  for (const CentroidPair& cp : pairs) {
    found.insert(MakeResultPair(cp.ci, cp.cj));
  }
  // Reference: brute force over the centroid set with per-type bounds.
  std::unordered_set<RankingId> singleton_set(
      fx.clustering.singletons.begin(), fx.clustering.singletons.end());
  std::vector<RankingId> everyone = fx.clustering.centroids;
  everyone.insert(everyone.end(), fx.clustering.singletons.begin(),
                  fx.clustering.singletons.end());
  for (size_t i = 0; i < everyone.size(); ++i) {
    for (size_t j = i + 1; j < everyone.size(); ++j) {
      const RankingId a = everyone[i];
      const RankingId b = everyone[j];
      const bool sa = singleton_set.count(a) > 0;
      const bool sb = singleton_set.count(b) > 0;
      uint32_t bound = spec.raw_theta;
      if (!sa && !sb) {
        bound = spec.raw_theta + 2 * spec.raw_theta_c;
      } else if (!sa || !sb) {
        bound = spec.raw_theta + spec.raw_theta_c;
      }
      const bool qualifies =
          FootruleDistance(table.Get(a), table.Get(b)) <= bound;
      EXPECT_EQ(found.count(MakeResultPair(a, b)) > 0, qualifies)
          << a << "," << b;
    }
  }
}

TEST(CentroidJoinTest, SingletonOptimizationOffUsesUniformThreshold) {
  CentroidJoinFixture fx(206, 0.03);
  RankingTable table(fx.ordered);
  CentroidJoinSpec spec = fx.JoinSpec(0.2, /*singleton_opt=*/false);
  auto pairs = RunCentroidJoin(&fx.ctx, table, fx.clustering.centroids,
                               fx.clustering.singletons, spec, &fx.stats);
  const uint32_t bound = spec.raw_theta + 2 * spec.raw_theta_c;
  for (const CentroidPair& cp : pairs) {
    EXPECT_LE(cp.distance, bound);
  }
  // The uniform threshold retrieves at least the pairs of the optimized
  // join (it may add ss/ms pairs between theta and theta + 2*theta_c).
  auto optimized =
      RunCentroidJoin(&fx.ctx, table, fx.clustering.centroids,
                      fx.clustering.singletons, fx.JoinSpec(0.2), &fx.stats);
  EXPECT_GE(pairs.size(), optimized.size());
}

}  // namespace
}  // namespace rankjoin
