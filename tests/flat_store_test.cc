#include "ranking/flat_rankings.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/io.h"
#include "minispark/serde.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

using testutil::SmallSkewedDataset;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/rankjoin_flat_" + name;
}

// ---------------------------------------------------------------------
// Store construction and views
// ---------------------------------------------------------------------

TEST(FlatRankingsTest, FromRankingsMirrorsLegacyVector) {
  RankingDataset ds = SmallSkewedDataset(7, 64, 6);
  FlatRankings flat = FlatRankings::FromRankings(ds.k, ds.rankings);
  ASSERT_EQ(flat.size(), ds.size());
  ASSERT_EQ(flat.k(), ds.k);
  for (size_t i = 0; i < ds.size(); ++i) {
    RankingView v = flat.view(i);
    EXPECT_EQ(v.id, ds.rankings[i].id());
    EXPECT_EQ(static_cast<int>(v.k), ds.k);
    for (int r = 0; r < ds.k; ++r) {
      EXPECT_EQ(v.ItemAt(r), ds.rankings[i].ItemAt(r));
    }
  }
}

TEST(FlatRankingsTest, ViewRankOfMatchesRanking) {
  RankingDataset ds = SmallSkewedDataset(8, 16, 10);
  const FlatRankings& flat = ds.store();
  for (size_t i = 0; i < ds.size(); ++i) {
    RankingView v = flat.view(i);
    for (int r = 0; r < ds.k; ++r) {
      EXPECT_EQ(v.RankOf(v.ItemAt(r)), r);
    }
    EXPECT_EQ(v.RankOf(999999), -1);
  }
}

TEST(FlatRankingsTest, BuilderAppendsInOrder) {
  FlatRankings::Builder builder(3);
  builder.Reserve(2);
  const ItemId a[] = {5, 1, 9};
  const ItemId b[] = {2, 8, 4};
  builder.Append(10, a);
  builder.Append(11, b);
  EXPECT_EQ(builder.size(), 2u);
  FlatRankings flat = std::move(builder).Build();
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat.view(0).id, 10u);
  EXPECT_EQ(flat.view(1).ItemAt(2), 4u);
  EXPECT_TRUE(flat.Validate().ok());
}

TEST(FlatRankingsTest, ToRankingAndMaterializeRoundTrip) {
  RankingDataset ds = SmallSkewedDataset(9, 32, 5);
  const FlatRankings& flat = ds.store();
  std::vector<Ranking> back = flat.MaterializeRankings();
  ASSERT_EQ(back.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(back[i], ds.rankings[i]);
    EXPECT_EQ(flat.ToRanking(i), ds.rankings[i]);
  }
}

TEST(FlatRankingsTest, ValidateCatchesDuplicateItems) {
  FlatRankings::Builder builder(3);
  const ItemId bad[] = {7, 7, 1};
  builder.Append(0, bad);
  FlatRankings flat = std::move(builder).Build();
  Status first = flat.Validate();
  EXPECT_FALSE(first.ok());
  // Memoized: the second call reports the same failure.
  EXPECT_EQ(flat.Validate().code(), first.code());
}

TEST(ScratchItemSetTest, DetectsDuplicatesAcrossGenerations) {
  internal::ScratchItemSet set;
  for (int round = 0; round < 3; ++round) {
    set.Begin(4);
    EXPECT_TRUE(set.Insert(1));
    EXPECT_TRUE(set.Insert(2));
    EXPECT_FALSE(set.Insert(1));  // duplicate within this generation
  }
  const ItemId distinct[] = {1, 2, 3};
  const ItemId dup[] = {1, 2, 1};
  EXPECT_TRUE(internal::ItemsDistinct(distinct, 3));
  EXPECT_FALSE(internal::ItemsDistinct(dup, 3));
}

// ---------------------------------------------------------------------
// RankingDataset store plumbing
// ---------------------------------------------------------------------

TEST(RankingDatasetStoreTest, StoreIsCachedAndRebuiltOnChange) {
  RankingDataset ds = SmallSkewedDataset(10, 20, 4);
  const FlatRankings* first = &ds.store();
  EXPECT_EQ(first, &ds.store());  // cached
  ds.rankings.push_back(Ranking(999, {90, 91, 92, 93}));
  const FlatRankings& rebuilt = ds.store();
  EXPECT_EQ(rebuilt.size(), ds.rankings.size());
  EXPECT_EQ(rebuilt.view(rebuilt.size() - 1).id, 999u);
}

TEST(RankingDatasetStoreTest, ValidateRoutesThroughStore) {
  RankingDataset ds;
  ds.k = 3;
  ds.rankings.push_back(Ranking(0, {1, 2, 2}));
  EXPECT_FALSE(ds.Validate().ok());

  RankingDataset ok = SmallSkewedDataset(11, 10, 5);
  EXPECT_TRUE(ok.Validate().ok());
}

// ---------------------------------------------------------------------
// Columnar file format (RKJC)
// ---------------------------------------------------------------------

TEST(ColumnarIoTest, WriteMapRoundTrip) {
  RankingDataset original = SmallSkewedDataset(12, 200, 8);
  const std::string path = TempPath("roundtrip.rkjc");
  ASSERT_TRUE(WriteFlatRankings(path, original).ok());

  auto mapped = MapFlatRankings(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // Mmap-born: legacy vector stays empty, the store serves the columns.
  EXPECT_TRUE(mapped->rankings.empty());
  EXPECT_TRUE(mapped->has_store());
  ASSERT_EQ(mapped->size(), original.size());
  ASSERT_EQ(mapped->k, original.k);

  const FlatRankings& flat = mapped->store();
  const FlatRankings& truth = original.store();
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(flat.view(i), truth.view(i));
  }
  // The legacy A/B path materializes identical Rankings.
  std::vector<Ranking> legacy = mapped->MaterializeLegacy();
  ASSERT_EQ(legacy.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(legacy[i], original.rankings[i]);
  }
  std::remove(path.c_str());
}

TEST(ColumnarIoTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.rkjc");
  std::ofstream(path) << "NOPE this is not a columnar ranking file at all";
  auto mapped = MapFlatRankings(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ColumnarIoTest, RejectsTruncatedFile) {
  RankingDataset ds = SmallSkewedDataset(13, 50, 6);
  const std::string path = TempPath("trunc.rkjc");
  ASSERT_TRUE(WriteFlatRankings(path, ds).ok());

  // Re-write only a prefix: the header promises more column bytes than
  // the file holds.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  auto mapped = MapFlatRankings(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);

  // A file shorter than the header is also a truncation error.
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, 10);
  auto short_header = MapFlatRankings(path);
  ASSERT_FALSE(short_header.ok());
  EXPECT_EQ(short_header.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ColumnarIoTest, RejectsMissingFile) {
  auto mapped = MapFlatRankings("/nonexistent/dir/data.rkjc");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);
}

TEST(ColumnarIoTest, MapValidatesDistinctItems) {
  // Hand-craft a file whose item column violates the distinct-items
  // invariant; the loader must reject it at map time.
  RankingDataset ds;
  ds.k = 3;
  ds.rankings.push_back(Ranking(0, {1, 2, 3}));
  const std::string path = TempPath("invalid.rkjc");
  ASSERT_TRUE(WriteFlatRankings(path, ds).ok());
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  // Items column starts at 20 (header) + 4 (one id); duplicate item 0
  // over item 1.
  file.seekp(20 + 4);
  const uint32_t dup = 1;
  file.write(reinterpret_cast<const char*>(&dup), sizeof(dup));
  file.seekp(20 + 8);
  file.write(reinterpret_cast<const char*>(&dup), sizeof(dup));
  file.close();
  auto mapped = MapFlatRankings(path);
  EXPECT_FALSE(mapped.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Store name parsing and view serde
// ---------------------------------------------------------------------

TEST(RankingStoreTest, NamesRoundTrip) {
  EXPECT_EQ(*ParseRankingStore("flat"), RankingStore::kFlat);
  EXPECT_EQ(*ParseRankingStore("legacy"), RankingStore::kLegacy);
  EXPECT_STREQ(RankingStoreName(RankingStore::kFlat), "flat");
  EXPECT_STREQ(RankingStoreName(RankingStore::kLegacy), "legacy");
  EXPECT_FALSE(ParseRankingStore("columnar?").ok());
}

TEST(RankingViewSerdeTest, EncodesHeaderOnly) {
  RankingDataset ds = SmallSkewedDataset(14, 4, 10);
  RankingView v = ds.store().view(2);

  using Serde = minispark::Serde<RankingView>;
  EXPECT_EQ(Serde::Size(v), sizeof(RankingView));
  std::string buffer;
  Serde::Write(v, &buffer);
  EXPECT_EQ(buffer.size(), sizeof(RankingView));

  RankingView back;
  const char* p = buffer.data();
  Serde::Read(&p, buffer.data() + buffer.size(), &back);
  EXPECT_EQ(p, buffer.data() + buffer.size());
  EXPECT_EQ(back, v);
  EXPECT_EQ(back.items, v.items);  // zero-copy: same column slice
}

}  // namespace
}  // namespace rankjoin
