#include "search/range_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "data/generator.h"
#include "ranking/footrule.h"
#include "tests/test_util.h"

namespace rankjoin {
namespace {

/// Linear-scan ground truth for a range query.
std::set<RankingId> ScanTruth(const RankingDataset& ds, const Ranking& q,
                              double theta) {
  const uint32_t raw = RawThreshold(theta, ds.k);
  std::set<RankingId> out;
  for (const Ranking& r : ds.rankings) {
    if (r.id() == q.id()) continue;
    if (FootruleDistance(q, r) <= raw) out.insert(r.id());
  }
  return out;
}

std::set<RankingId> AsSet(const std::vector<RankingId>& ids) {
  return std::set<RankingId>(ids.begin(), ids.end());
}

class RangeSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = testutil::SmallSkewedDataset(1000, 500);
  }

  RankingDataset dataset_;
};

TEST_F(RangeSearchTest, PrefixIndexMatchesScan) {
  auto index = PrefixRangeIndex::Build(dataset_, 0.4);
  ASSERT_TRUE(index.ok()) << index.status();
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Ranking& q = dataset_.rankings[rng.Uniform(dataset_.size())];
    for (double theta : {0.05, 0.2, 0.4}) {
      auto result = index->Query(q, theta);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(AsSet(*result), ScanTruth(dataset_, q, theta))
          << "query " << q.id() << " theta " << theta;
    }
  }
}

TEST_F(RangeSearchTest, PrefixIndexExternalQueries) {
  // Queries that are not part of the indexed dataset.
  auto index = PrefixRangeIndex::Build(dataset_, 0.3);
  ASSERT_TRUE(index.ok());
  GeneratorOptions options;
  options.k = dataset_.k;
  options.num_rankings = 20;
  options.domain_size = 300;
  options.seed = 1001;
  RankingDataset queries = GenerateDataset(options);
  for (const Ranking& raw_query : queries.rankings) {
    // Give external queries ids outside the dataset's range.
    Ranking q(raw_query.id() + 1000000, raw_query.items());
    auto result = index->Query(q, 0.3);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(AsSet(*result), ScanTruth(dataset_, q, 0.3));
  }
}

TEST_F(RangeSearchTest, PrefixIndexRejectsOverBudgetTheta) {
  auto index = PrefixRangeIndex::Build(dataset_, 0.2);
  ASSERT_TRUE(index.ok());
  auto result = index->Query(dataset_.rankings[0], 0.3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RangeSearchTest, PrefixIndexRejectsWrongK) {
  auto index = PrefixRangeIndex::Build(dataset_, 0.3);
  ASSERT_TRUE(index.ok());
  Ranking bad(0, {1, 2, 3});
  EXPECT_FALSE(index->Query(bad, 0.2).ok());
}

TEST_F(RangeSearchTest, PrefixIndexStatsAccumulate) {
  auto index = PrefixRangeIndex::Build(dataset_, 0.3);
  ASSERT_TRUE(index.ok());
  JoinStats stats;
  auto result = index->Query(dataset_.rankings[0], 0.1, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_EQ(stats.result_pairs, result->size());
}

TEST_F(RangeSearchTest, CoarseIndexMatchesScan) {
  for (int pivots : {1, 8, 64}) {
    auto index = CoarseRangeIndex::Build(dataset_, pivots);
    ASSERT_TRUE(index.ok()) << index.status();
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
      const Ranking& q = dataset_.rankings[rng.Uniform(dataset_.size())];
      for (double theta : {0.05, 0.3, 0.6}) {
        auto result = index->Query(q, theta);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(AsSet(*result), ScanTruth(dataset_, q, theta))
            << "pivots " << pivots << " theta " << theta;
      }
    }
  }
}

TEST_F(RangeSearchTest, CoarseIndexPrunes) {
  auto index = CoarseRangeIndex::Build(dataset_, 32);
  ASSERT_TRUE(index.ok());
  JoinStats stats;
  auto result = index->Query(dataset_.rankings[0], 0.05, &stats);
  ASSERT_TRUE(result.ok());
  // At a tiny threshold, the triangle filters must remove most of the
  // dataset without verification.
  EXPECT_GT(stats.triangle_filtered, dataset_.size() / 2);
  EXPECT_LT(stats.verified, dataset_.size());
}

TEST_F(RangeSearchTest, CoarseIndexMorePivotsThanPoints) {
  RankingDataset tiny;
  tiny.k = 3;
  tiny.rankings = {Ranking(0, {1, 2, 3}), Ranking(1, {2, 3, 4})};
  auto index = CoarseRangeIndex::Build(tiny, 50);
  ASSERT_TRUE(index.ok());
  EXPECT_LE(index->num_pivots(), 2);
  auto result = index->Query(tiny.rankings[0], 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AsSet(*result), ScanTruth(tiny, tiny.rankings[0], 0.5));
}

TEST_F(RangeSearchTest, EmptyDataset) {
  RankingDataset empty;
  empty.k = 5;
  auto prefix_index = PrefixRangeIndex::Build(empty, 0.3);
  ASSERT_TRUE(prefix_index.ok());
  Ranking q(0, {1, 2, 3, 4, 5});
  auto r1 = prefix_index->Query(q, 0.2);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());

  auto coarse_index = CoarseRangeIndex::Build(empty, 4);
  ASSERT_TRUE(coarse_index.ok());
  auto r2 = coarse_index->Query(q, 0.2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST_F(RangeSearchTest, IndicesAgreeWithEachOther) {
  auto prefix_index = PrefixRangeIndex::Build(dataset_, 0.4);
  auto coarse_index = CoarseRangeIndex::Build(dataset_, 16);
  ASSERT_TRUE(prefix_index.ok());
  ASSERT_TRUE(coarse_index.ok());
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Ranking& q = dataset_.rankings[rng.Uniform(dataset_.size())];
    auto a = prefix_index->Query(q, 0.25);
    auto b = coarse_index->Query(q, 0.25);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(AsSet(*a), AsSet(*b));
  }
}

}  // namespace
}  // namespace rankjoin
