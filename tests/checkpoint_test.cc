// Durable checkpoints and crash resume: blob encode/decode integrity,
// manifest commit/epoch protocol (including torn manifests), resume
// skipping verified stages with byte-identical results across all seven
// join pipelines, chaos corruption falling back to re-execution, and
// the disk-pressure policies.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/similarity_join.h"
#include "jaccard/jaccard_join.h"
#include "minispark/checkpoint.h"
#include "minispark/context.h"
#include "minispark/dataset.h"
#include "minispark/extra_ops.h"
#include "minispark/plan.h"
#include "tests/test_util.h"

namespace rankjoin::minispark {
namespace {

using rankjoin::testutil::PairSet;
using rankjoin::testutil::SmallSkewedDataset;
using rankjoin::testutil::TestCluster;

/// Pins an environment variable for one test's scope (same pattern as
/// pipelined_test.cc): CI runs the suite under chaos/checkpoint
/// overrides, which would otherwise clobber the Options a test sets.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

struct PinnedEnv {
  ScopedEnv fault{"RANKJOIN_FAULT_SPEC", nullptr};
  ScopedEnv budget{"RANKJOIN_SHUFFLE_BUDGET_BYTES", nullptr};
  ScopedEnv trace{"RANKJOIN_TRACE_LEVEL", nullptr};
  ScopedEnv lint{"RANKJOIN_LINT_LEVEL", nullptr};
  ScopedEnv pipelined{"RANKJOIN_PIPELINED_STAGES", nullptr};
  ScopedEnv ckpt_dir{"RANKJOIN_CHECKPOINT_DIR", nullptr};
  ScopedEnv resume{"RANKJOIN_RESUME", nullptr};
  ScopedEnv deadline{"RANKJOIN_JOB_DEADLINE_MS", nullptr};
};

/// A fresh empty directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/rankjoin_ckpt_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::pair<int, int>> IntPairs(int n, int key_mod) {
  std::vector<std::pair<int, int>> data;
  data.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) data.push_back({i % key_mod, i});
  return data;
}

// ---------------------------------------------------------------------
// Portability gating (compile-time contract)
// ---------------------------------------------------------------------

struct HasNoSerde {
  int x = 0;
};

static_assert(checkpoint_portable_v<int>);
static_assert(checkpoint_portable_v<std::pair<uint32_t, uint32_t>>);
static_assert(checkpoint_portable_v<std::string>);
static_assert(checkpoint_portable_v<std::vector<std::pair<int, int>>>);
static_assert(checkpoint_portable_v<ResultPair>,
              "result pairs must stay resumable");
static_assert(!checkpoint_portable_v<HasNoSerde>,
              "no-serde types must be excluded");
static_assert(!checkpoint_portable_v<std::pair<int, HasNoSerde>>);
// Raw-pointer-bearing records round-trip through the in-process Serde
// but are poison across processes; the trait must keep them out.
static_assert(!CheckpointPortable<int*>::value);

// ---------------------------------------------------------------------
// Blob format
// ---------------------------------------------------------------------

TEST(CheckpointBlobTest, EncodeDecodeRoundtrip) {
  std::vector<std::vector<std::pair<int, int>>> parts = {
      {{1, 2}, {3, 4}}, {}, {{5, 6}}};
  const std::string blob =
      EncodeCheckpointPartitions(parts, /*fingerprint=*/7, /*occurrence=*/0,
                                 /*injector=*/nullptr);
  std::vector<std::vector<std::pair<int, int>>> decoded;
  ASSERT_TRUE(DecodeCheckpointPartitions(blob, &decoded));
  EXPECT_EQ(parts, decoded);
}

TEST(CheckpointBlobTest, RejectsBitFlipAndTruncation) {
  std::vector<std::vector<int>> parts = {{1, 2, 3}, {4, 5}};
  const std::string blob =
      EncodeCheckpointPartitions(parts, 7, 0, nullptr);
  std::vector<std::vector<int>> decoded;

  std::string flipped = blob;
  flipped[flipped.size() - 2] ^= 0x01;  // payload byte
  EXPECT_FALSE(DecodeCheckpointPartitions(flipped, &decoded));

  for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t{3}, size_t{0}}) {
    EXPECT_FALSE(
        DecodeCheckpointPartitions(blob.substr(0, cut), &decoded))
        << "truncated at " << cut;
  }

  std::string wrong_magic = blob;
  wrong_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeCheckpointPartitions(wrong_magic, &decoded));
}

TEST(CheckpointBlobTest, InjectedCorruptionIsDetected) {
  auto spec = ParseFaultSpec("checkpoint_corrupt:p=1;seed=5");
  ASSERT_TRUE(spec.ok());
  FaultInjector injector(*spec, nullptr);
  std::vector<std::vector<int>> parts = {{1, 2, 3}};
  const std::string blob =
      EncodeCheckpointPartitions(parts, 7, 0, &injector);
  std::vector<std::vector<int>> decoded;
  EXPECT_FALSE(DecodeCheckpointPartitions(blob, &decoded));
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

TEST(CheckpointFingerprintTest, StableAndStructureSensitive) {
  auto src = MakePlanNode(PlanNode::Kind::kSource, "parallelize", "", {},
                          {.num_partitions = 8});
  auto map = MakePlanNode(PlanNode::Kind::kNarrow, "map", "m", {src},
                          {.op_id = 17, .lazy = true});
  // An identical rebuild (different op_id / lazy — runtime noise) must
  // fingerprint the same: that is what keys resume across processes.
  auto src2 = MakePlanNode(PlanNode::Kind::kSource, "parallelize", "", {},
                           {.num_partitions = 8});
  auto map2 = MakePlanNode(PlanNode::Kind::kNarrow, "map", "m", {src2},
                           {.op_id = 99, .lazy = false});
  EXPECT_EQ(PlanFingerprint(map.get()), PlanFingerprint(map2.get()));

  auto renamed = MakePlanNode(PlanNode::Kind::kNarrow, "map", "other", {src});
  EXPECT_NE(PlanFingerprint(map.get()), PlanFingerprint(renamed.get()));
  EXPECT_NE(PlanFingerprint(map.get()), PlanFingerprint(src.get()));
  EXPECT_NE(PlanFingerprint(nullptr), 0u);

  const uint64_t h = FingerprintMixString(1, "join");
  EXPECT_EQ(h, FingerprintMixString(1, "join"));
  EXPECT_NE(h, FingerprintMixString(1, "cogroup"));
  EXPECT_NE(FingerprintMix(h, 4), FingerprintMix(h, 8));
}

// ---------------------------------------------------------------------
// Manager: manifest commit, epochs, torn manifests
// ---------------------------------------------------------------------

TEST(CheckpointManagerTest, SaveLoadRoundtripAcrossManagers) {
  const std::string dir = FreshDir("roundtrip");
  const std::string blob = "hello checkpoint";
  {
    CheckpointManager writer(dir, /*resume=*/false,
                             DiskPressurePolicy::kDropCheckpoints, nullptr);
    ASSERT_TRUE(writer.enabled());
    uint64_t occ = 0;
    const std::string key = writer.NextKey(42, &occ);
    EXPECT_EQ(occ, 0u);
    ASSERT_TRUE(writer.SaveBlob(key, blob).ok());
    // Same fingerprint again: occurrence-qualified, distinct key.
    const std::string key2 = writer.NextKey(42, &occ);
    EXPECT_EQ(occ, 1u);
    EXPECT_NE(key, key2);
  }
  {
    CheckpointManager resumer(dir, /*resume=*/true,
                              DiskPressurePolicy::kDropCheckpoints, nullptr);
    ASSERT_TRUE(resumer.enabled());
    uint64_t occ = 0;
    const std::string key = resumer.NextKey(42, &occ);
    std::string loaded;
    ASSERT_TRUE(resumer.TryLoadBlob(key, &loaded));
    EXPECT_EQ(loaded, blob);
  }
}

TEST(CheckpointManagerTest, FreshStartBumpsEpochAndInvalidates) {
  const std::string dir = FreshDir("epoch");
  uint64_t first_epoch = 0;
  {
    CheckpointManager writer(dir, false,
                             DiskPressurePolicy::kDropCheckpoints, nullptr);
    uint64_t occ = 0;
    ASSERT_TRUE(writer.SaveBlob(writer.NextKey(7, &occ), "old data").ok());
    first_epoch = writer.epoch();
  }
  {
    // A resume start keeps the epoch (entries verify)...
    CheckpointManager resumer(dir, true,
                              DiskPressurePolicy::kDropCheckpoints, nullptr);
    EXPECT_EQ(resumer.epoch(), first_epoch);
    uint64_t occ = 0;
    std::string loaded;
    EXPECT_TRUE(resumer.TryLoadBlob(resumer.NextKey(7, &occ), &loaded));
  }
  {
    // ...while a fresh (non-resume) start bumps it and must not serve
    // the previous run's entries.
    CheckpointManager fresh(dir, false,
                            DiskPressurePolicy::kDropCheckpoints, nullptr);
    EXPECT_GT(fresh.epoch(), first_epoch);
    uint64_t occ = 0;
    std::string loaded;
    EXPECT_FALSE(fresh.TryLoadBlob(fresh.NextKey(7, &occ), &loaded));
  }
}

TEST(CheckpointManagerTest, TornManifestMeansCleanReexecutionNotCrash) {
  const std::string dir = FreshDir("torn");
  {
    CheckpointManager writer(dir, false,
                             DiskPressurePolicy::kDropCheckpoints, nullptr);
    uint64_t occ = 0;
    ASSERT_TRUE(writer.SaveBlob(writer.NextKey(1, &occ), "aaaa").ok());
    ASSERT_TRUE(writer.SaveBlob(writer.NextKey(2, &occ), "bbbb").ok());
  }
  const std::string manifest = dir + "/MANIFEST";
  const auto full_size = std::filesystem::file_size(manifest);
  ASSERT_GT(full_size, 10u);
  std::filesystem::resize_file(manifest, full_size - 5);  // torn tail

  CheckpointManager resumer(dir, true,
                            DiskPressurePolicy::kDropCheckpoints, nullptr);
  EXPECT_TRUE(resumer.enabled());  // degraded data, usable store
  uint64_t occ = 0;
  // The manifest rewrites entries in hash-map order, so the torn tail
  // drops ONE of the two entries (whichever was last). The intact one
  // must load its exact content; the torn one must read as absent — a
  // clean re-execution, never garbage.
  std::string loaded1;
  std::string loaded2;
  const bool ok1 = resumer.TryLoadBlob(resumer.NextKey(1, &occ), &loaded1);
  const bool ok2 = resumer.TryLoadBlob(resumer.NextKey(2, &occ), &loaded2);
  EXPECT_NE(ok1, ok2);
  if (ok1) {
    EXPECT_EQ(loaded1, "aaaa");
  }
  if (ok2) {
    EXPECT_EQ(loaded2, "bbbb");
  }

  // Garbage from the first byte: everything re-executes, still no crash.
  std::ofstream(manifest, std::ios::trunc) << "not a manifest at all";
  CheckpointManager garbage(dir, true,
                            DiskPressurePolicy::kDropCheckpoints, nullptr);
  EXPECT_TRUE(garbage.enabled());
  std::string loaded;
  EXPECT_FALSE(garbage.TryLoadBlob(garbage.NextKey(1, &occ), &loaded));
}

// ---------------------------------------------------------------------
// Engine integration: resume skips stages, results stay identical
// ---------------------------------------------------------------------

std::vector<std::pair<int, int>> RunReduceJob(Context* ctx) {
  auto ds = Parallelize(ctx, IntPairs(600, 11), 8)
                .Map([](std::pair<int, int> kv) {
                  kv.second *= 3;
                  return kv;
                });
  auto result = ReduceByKey(ds, [](int a, int b) { return a + b; }, 8)
                    .TryCollect();
  EXPECT_TRUE(result.ok()) << result.status();
  auto sorted = result.ok() ? *result : std::vector<std::pair<int, int>>{};
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

TEST(CheckpointResumeTest, SecondRunSkipsStagesWithIdenticalResult) {
  PinnedEnv env;
  const std::string dir = FreshDir("resume_reduce");

  Context::Options options = TestCluster();
  options.checkpoint_dir = dir;
  std::vector<std::pair<int, int>> first;
  {
    Context ctx(options);
    first = RunReduceJob(&ctx);
    EXPECT_GE(ctx.telemetry().checkpoint_stages_saved(), 1u);
    EXPECT_EQ(ctx.telemetry().checkpoint_stages_skipped(), 0u);
  }
  {
    options.resume = true;
    Context ctx(options);
    const auto second = RunReduceJob(&ctx);
    EXPECT_EQ(first, second);
    EXPECT_GE(ctx.telemetry().checkpoint_stages_skipped(), 1u);
    EXPECT_EQ(ctx.telemetry().checkpoint_restore_failed(), 0u);
  }
}

TEST(CheckpointResumeTest, WideOpsRestoreAcrossContexts) {
  PinnedEnv env;
  const std::string dir = FreshDir("resume_wide");
  Context::Options options = TestCluster();
  options.checkpoint_dir = dir;
  options.shuffle_memory_budget_bytes = 256;  // force spills too

  auto job = [](Context* ctx) {
    auto left = Parallelize(ctx, IntPairs(200, 17), 8);
    auto right = Parallelize(ctx, IntPairs(150, 17), 4);
    auto joined = *Join(left, right, 8).TryCollect();
    auto sorted =
        *SortByKey(Parallelize(ctx, IntPairs(300, 23), 8), 8).TryCollect();
    auto repart = *Parallelize(ctx, std::vector<int>{1, 2, 3, 4, 5}, 4)
                       .Repartition(2)
                       .TryCollect();
    return std::make_tuple(joined, sorted, repart);
  };

  decltype(job(nullptr)) first;
  {
    Context ctx(options);
    first = job(&ctx);
    EXPECT_GE(ctx.telemetry().checkpoint_stages_saved(), 3u);
  }
  {
    options.resume = true;
    Context ctx(options);
    const auto second = job(&ctx);
    EXPECT_EQ(first, second);
    EXPECT_GE(ctx.telemetry().checkpoint_stages_skipped(), 3u);
  }
}

/// Runs the five footrule pipelines plus the two Jaccard joins in one
/// context (mirrors pipelined_test.cc) and returns the pair sets.
std::vector<std::set<ResultPair>> RunAllPipelines(
    const RankingDataset& ds, Context* ctx) {
  std::vector<std::set<ResultPair>> results;
  for (Algorithm algorithm : {Algorithm::kVJ, Algorithm::kVJNL,
                              Algorithm::kCL, Algorithm::kCLP,
                              Algorithm::kVSmart}) {
    SimilarityJoinConfig config;
    config.algorithm = algorithm;
    config.theta = 0.3;
    config.delta = 50;  // CL-P
    auto result = RunSimilarityJoin(ctx, ds, config);
    EXPECT_TRUE(result.ok()) << AlgorithmName(algorithm) << ": "
                             << result.status();
    results.push_back(result.ok() ? PairSet(result->pairs)
                                  : std::set<ResultPair>{});
  }
  JaccardJoinOptions jaccard;
  jaccard.theta = 0.4;
  auto jvj = RunJaccardVjJoin(ctx, ds, jaccard);
  EXPECT_TRUE(jvj.ok()) << jvj.status();
  results.push_back(jvj.ok() ? PairSet(jvj->pairs) : std::set<ResultPair>{});
  auto jcl = RunJaccardClusterJoin(ctx, ds, jaccard);
  EXPECT_TRUE(jcl.ok()) << jcl.status();
  results.push_back(jcl.ok() ? PairSet(jcl->pairs) : std::set<ResultPair>{});
  return results;
}

TEST(CheckpointResumeTest, AllSevenPipelinesResumeByteIdentical) {
  PinnedEnv env;
  const std::string dir = FreshDir("resume_pipelines");
  RankingDataset ds = SmallSkewedDataset(21, 300);

  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 4096;  // exercise spilling
  options.retry_backoff_ms = 0;
  options.checkpoint_dir = dir;

  std::vector<std::set<ResultPair>> plain;
  {
    Context ctx(TestCluster());
    plain = RunAllPipelines(ds, &ctx);
  }
  std::vector<std::set<ResultPair>> first;
  {
    Context ctx(options);
    first = RunAllPipelines(ds, &ctx);
    EXPECT_GE(ctx.telemetry().checkpoint_stages_saved(), 1u);
  }
  std::vector<std::set<ResultPair>> resumed;
  uint64_t skipped = 0;
  {
    options.resume = true;
    Context ctx(options);
    resumed = RunAllPipelines(ds, &ctx);
    skipped = ctx.telemetry().checkpoint_stages_skipped();
  }
  ASSERT_EQ(first.size(), 7u);
  ASSERT_EQ(resumed.size(), 7u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(plain[i], first[i]) << "pipeline #" << i;
    EXPECT_EQ(first[i], resumed[i]) << "pipeline #" << i;
    EXPECT_FALSE(first[i].empty()) << "pipeline #" << i << " found nothing";
  }
  EXPECT_GE(skipped, 1u);
}

TEST(CheckpointResumeTest, CorruptCheckpointsFallBackToReexecution) {
  PinnedEnv env;
  const std::string dir = FreshDir("resume_corrupt");
  RankingDataset ds = SmallSkewedDataset(22, 250);

  std::set<ResultPair> clean;
  {
    Context ctx(TestCluster());
    SimilarityJoinConfig config;
    config.algorithm = Algorithm::kVJ;
    config.theta = 0.3;
    auto result = RunSimilarityJoin(&ctx, ds, config);
    ASSERT_TRUE(result.ok()) << result.status();
    clean = PairSet(result->pairs);
  }

  Context::Options options = TestCluster();
  options.checkpoint_dir = dir;
  options.retry_backoff_ms = 0;
  {
    // Every checkpoint payload is corrupted AFTER its checksum: the
    // writes succeed, the resume run must detect and re-execute.
    Context::Options writer = options;
    writer.fault_spec = "checkpoint_corrupt:p=1;seed=3";
    Context ctx(writer);
    SimilarityJoinConfig config;
    config.algorithm = Algorithm::kVJ;
    config.theta = 0.3;
    auto result = RunSimilarityJoin(&ctx, ds, config);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(clean, PairSet(result->pairs));
  }
  {
    options.resume = true;
    Context ctx(options);
    SimilarityJoinConfig config;
    config.algorithm = Algorithm::kVJ;
    config.theta = 0.3;
    auto result = RunSimilarityJoin(&ctx, ds, config);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(clean, PairSet(result->pairs));
    EXPECT_GE(ctx.telemetry().checkpoint_restore_failed(), 1u);
  }
}

// ---------------------------------------------------------------------
// Disk pressure
// ---------------------------------------------------------------------

TEST(DiskPressureTest, DefaultPolicyDegradesAndJobSucceeds) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 64;  // spill constantly
  options.fault_spec = "spill_enospc:p=1;seed=2";
  options.retry_backoff_ms = 0;
  Context ctx(options);
  auto result =
      GroupByKey(Parallelize(&ctx, IntPairs(400, 7), 8), 8).TryCollect();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(ctx.spill_degraded());
  EXPECT_GE(ctx.telemetry().disk_pressure_events(), 1u);

  // Same data through a clean context: degrading changed nothing.
  Context clean_ctx(TestCluster());
  auto clean =
      GroupByKey(Parallelize(&clean_ctx, IntPairs(400, 7), 8), 8)
          .TryCollect();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, *result);
}

TEST(DiskPressureTest, FailPolicySurfacesIoError) {
  PinnedEnv env;
  Context::Options options = TestCluster();
  options.shuffle_memory_budget_bytes = 64;
  options.fault_spec = "spill_enospc:p=1;seed=2";
  options.disk_pressure_policy = DiskPressurePolicy::kFail;
  options.max_task_retries = 1;
  options.retry_backoff_ms = 0;
  Context ctx(options);
  auto result =
      GroupByKey(Parallelize(&ctx, IntPairs(400, 7), 8), 8).TryCollect();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DiskPressureTest, CheckpointWriteFailureDropsCheckpointing) {
  PinnedEnv env;
  // An unusable checkpoint directory (a regular file sits where the
  // store should be) must disable checkpointing, not fail the job.
  const std::string dir = FreshDir("unusable");
  const std::string blocked = dir + "/blocked";
  std::ofstream(blocked) << "not a directory";
  Context::Options options = TestCluster();
  options.checkpoint_dir = blocked + "/store";
  Context ctx(options);
  const auto result = RunReduceJob(&ctx);
  EXPECT_FALSE(result.empty());
  EXPECT_EQ(ctx.telemetry().checkpoint_stages_saved(), 0u);
}

// ---------------------------------------------------------------------
// Options / env plumbing
// ---------------------------------------------------------------------

TEST(CheckpointOptionsTest, EnvOverridesConfigureManager) {
  PinnedEnv env;
  const std::string dir = FreshDir("env");
  ScopedEnv d{"RANKJOIN_CHECKPOINT_DIR", dir.c_str()};
  ScopedEnv r{"RANKJOIN_RESUME", "1"};
  Context ctx(TestCluster());
  ASSERT_NE(ctx.checkpoint_manager(), nullptr);
  EXPECT_TRUE(ctx.checkpoint_manager()->enabled());
  EXPECT_TRUE(ctx.checkpoint_manager()->resume());
  EXPECT_EQ(ctx.checkpoint_manager()->dir(), dir);
}

TEST(CheckpointOptionsTest, NoDirectoryMeansNoManager) {
  PinnedEnv env;
  Context ctx(TestCluster());
  EXPECT_EQ(ctx.checkpoint_manager(), nullptr);
}

}  // namespace
}  // namespace rankjoin::minispark
