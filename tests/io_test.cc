#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/generator.h"

namespace rankjoin {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/rankjoin_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, RoundTrip) {
  GeneratorOptions options;
  options.num_rankings = 120;
  options.k = 7;
  options.domain_size = 80;
  RankingDataset original = GenerateDataset(options);

  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteRankings(path, original).ok());
  auto loaded = ReadRankings(path, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->rankings[i], original.rankings[i]);
  }
  std::remove(path.c_str());
}

TEST_F(IoTest, ParsesExplicitIdsAndComments) {
  const std::string path = TempPath("ids.txt");
  WriteFile(path,
            "# sample dataset (Table 2)\n"
            "1: 2 5 4 3 1\n"
            "\n"
            "2: 1 4 5 9 0\n");
  auto ds = ReadRankings(path, 5);
  ASSERT_TRUE(ds.ok()) << ds.status();
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->rankings[0].id(), 1u);
  EXPECT_EQ(ds->rankings[0].ItemAt(0), 2u);
  EXPECT_EQ(ds->rankings[1].id(), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, AssignsLineIdsWithoutPrefix) {
  const std::string path = TempPath("noids.txt");
  WriteFile(path, "1 2 3\n4 5 6\n");
  auto ds = ReadRankings(path, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->rankings[0].id(), 0u);
  EXPECT_EQ(ds->rankings[1].id(), 1u);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsMissingFile) {
  auto ds = ReadRankings("/nonexistent/path/data.txt", 5);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, RejectsWrongLength) {
  const std::string path = TempPath("short.txt");
  WriteFile(path, "1 2 3\n");
  auto ds = ReadRankings(path, 5);
  EXPECT_FALSE(ds.ok());
  EXPECT_NE(ds.status().message().find("expected 5"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsDuplicateItems) {
  const std::string path = TempPath("dup.txt");
  WriteFile(path, "1 2 2\n");
  auto ds = ReadRankings(path, 3);
  EXPECT_FALSE(ds.ok());
  EXPECT_NE(ds.status().message().find("duplicate"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsNegativeItems) {
  const std::string path = TempPath("neg.txt");
  WriteFile(path, "1 -2 3\n");
  auto ds = ReadRankings(path, 3);
  EXPECT_FALSE(ds.ok());
  std::remove(path.c_str());
}

TEST(PreprocessSetsTest, CutsToFirstKDistinctTokens) {
  std::vector<std::vector<ItemId>> records = {
      {5, 5, 1, 2, 9, 9, 3},  // first 4 distinct tokens: 5 1 2 9
  };
  RankingDataset ds = PreprocessSets(records, 4);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.rankings[0].items(), (std::vector<ItemId>{5, 1, 2, 9}));
}

TEST(PreprocessSetsTest, DropsShortRecords) {
  std::vector<std::vector<ItemId>> records = {{1, 2}, {1, 2, 3, 4}};
  RankingDataset ds = PreprocessSets(records, 3);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.rankings[0].items(), (std::vector<ItemId>{1, 2, 3}));
}

TEST(PreprocessSetsTest, RemovesDuplicateRecords) {
  std::vector<std::vector<ItemId>> records = {
      {1, 2, 3}, {1, 2, 3}, {3, 2, 1}};
  RankingDataset ds = PreprocessSets(records, 3);
  EXPECT_EQ(ds.size(), 2u);
}

TEST(PreprocessSetsTest, CutCanCreateDistanceZeroPairs) {
  // The paper notes (Section 7) that cutting records to length k can
  // produce identical rankings even after duplicate-record removal.
  std::vector<std::vector<ItemId>> records = {{1, 2, 3, 4}, {1, 2, 3, 5}};
  RankingDataset ds = PreprocessSets(records, 3);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.rankings[0].items(), ds.rankings[1].items());
}

TEST(WriteResultPairsTest, SortsOutput) {
  const std::string path = testing::TempDir() + "/rankjoin_pairs.txt";
  std::vector<std::pair<RankingId, RankingId>> pairs = {{3, 4}, {1, 2}};
  ASSERT_TRUE(WriteResultPairs(path, pairs).ok());
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "1 2");
  EXPECT_EQ(line2, "3 4");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rankjoin
